package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wholegraph/internal/sim"
	"wholegraph/internal/wholemem"
)

func TestFromCOODirected(t *testing.T) {
	coo := COO{N: 4, Src: []int64{0, 0, 2, 3, 3}, Dst: []int64{1, 2, 0, 3, 1}}
	c, err := FromCOO(coo, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != 5 {
		t.Fatalf("edges = %d, want 5", c.NumEdges())
	}
	if got := c.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("neighbors(0) = %v", got)
	}
	if c.Degree(1) != 0 {
		t.Errorf("degree(1) = %d, want 0", c.Degree(1))
	}
	if got := c.Neighbors(3); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("neighbors(3) = %v (should be sorted)", got)
	}
	if c.MaxDegree() != 2 {
		t.Errorf("max degree = %d", c.MaxDegree())
	}
}

func TestFromCOOUndirected(t *testing.T) {
	coo := COO{N: 3, Src: []int64{0, 1}, Dst: []int64{1, 2}}
	c, err := FromCOO(coo, true)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", c.NumEdges())
	}
	if got := c.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("neighbors(1) = %v", got)
	}
}

func TestFromCOORejectsBadEdges(t *testing.T) {
	if _, err := FromCOO(COO{N: 2, Src: []int64{0}, Dst: []int64{5}}, false); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if _, err := FromCOO(COO{N: 2, Src: []int64{-1}, Dst: []int64{0}}, false); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := FromCOO(COO{N: 2, Src: []int64{0, 1}, Dst: []int64{0}}, false); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestGlobalIDPacking(t *testing.T) {
	g := MakeGlobalID(7, 123456789)
	if g.Rank() != 7 || g.Local() != 123456789 {
		t.Fatalf("roundtrip failed: %v", g)
	}
	if s := g.String(); s != "7:123456789" {
		t.Errorf("String = %q", s)
	}
	f := func(rank uint16, local uint32) bool {
		g := MakeGlobalID(int(rank), int64(local))
		return g.Rank() == int(rank) && g.Local() == int64(local)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalIDPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { MakeGlobalID(-1, 0) },
		func() { MakeGlobalID(1<<17, 0) },
		func() { MakeGlobalID(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRankForBalance(t *testing.T) {
	const parts, n = 8, 100000
	counts := make([]int, parts)
	for i := int64(0); i < n; i++ {
		r := RankFor(i, parts)
		if r < 0 || r >= parts {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	for r, c := range counts {
		if c < n/parts*9/10 || c > n/parts*11/10 {
			t.Errorf("rank %d holds %d nodes, want ~%d (hash imbalance)", r, c, n/parts)
		}
	}
}

func randomCSR(t *testing.T, n, m int64, seed int64) *CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := COO{N: n}
	for i := int64(0); i < m; i++ {
		coo.Src = append(coo.Src, rng.Int63n(n))
		coo.Dst = append(coo.Dst, rng.Int63n(n))
	}
	c, err := FromCOO(coo, false)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testPartition(t *testing.T) (*sim.Machine, *CSR, []float32, *Partitioned) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	comm, err := wholemem.NewComm(m.NodeDevs(0))
	if err != nil {
		t.Fatal(err)
	}
	const n, dim = 500, 3
	csr := randomCSR(t, n, 3000, 42)
	feat := make([]float32, n*dim)
	for i := range feat {
		feat[i] = float32(i)
	}
	p, err := Partition(csr, feat, dim, comm)
	if err != nil {
		t.Fatal(err)
	}
	return m, csr, feat, p
}

func TestPartitionPreservesTopology(t *testing.T) {
	_, csr, _, p := testPartition(t)
	for v := int64(0); v < csr.N; v++ {
		gid := p.Owner[v]
		if p.Orig[gid.Rank()][gid.Local()] != v {
			t.Fatalf("Owner/Orig mismatch for node %d", v)
		}
		if p.Degree(gid) != csr.Degree(v) {
			t.Fatalf("degree mismatch for node %d: %d vs %d", v, p.Degree(gid), csr.Degree(v))
		}
		want := csr.Neighbors(v)
		for k, w := range want {
			got := p.NeighborAt(gid, int64(k))
			if p.Orig[got.Rank()][got.Local()] != w {
				t.Fatalf("neighbor %d of node %d: got %v (orig %d), want %d",
					k, v, got, p.Orig[got.Rank()][got.Local()], w)
			}
		}
		nb := p.Neighbors(gid)
		if int64(len(nb)) != csr.Degree(v) {
			t.Fatalf("Neighbors slice length %d != degree %d", len(nb), csr.Degree(v))
		}
	}
}

func TestPartitionFeatures(t *testing.T) {
	_, csr, feat, p := testPartition(t)
	buf := make([]float32, p.Dim)
	for v := int64(0); v < csr.N; v++ {
		row := p.FeatRow(p.Owner[v])
		for j := 0; j < p.Dim; j++ {
			buf[j] = p.Feat.Get(row*int64(p.Dim) + int64(j))
		}
		for j := 0; j < p.Dim; j++ {
			if buf[j] != feat[v*int64(p.Dim)+int64(j)] {
				t.Fatalf("feature mismatch node %d dim %d: %g vs %g",
					v, j, buf[j], feat[v*int64(p.Dim)+int64(j)])
			}
		}
	}
}

func TestPartitionMemoryAccounting(t *testing.T) {
	_, csr, _, p := testPartition(t)
	var structure, features int64
	for _, b := range p.StructureBytesPerRank() {
		structure += b
	}
	for _, b := range p.FeatureBytesPerRank() {
		features += b
	}
	wantStruct := csr.NumEdges()*8 + (csr.N+int64(p.Comm.Size()))*8
	if structure != wantStruct {
		t.Errorf("structure bytes = %d, want %d", structure, wantStruct)
	}
	if features != csr.N*int64(p.Dim)*4 {
		t.Errorf("feature bytes = %d, want %d", features, csr.N*int64(p.Dim)*4)
	}
}

func TestPartitionRejectsBadFeatures(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	comm, _ := wholemem.NewComm(m.NodeDevs(0))
	csr := randomCSR(t, 10, 20, 1)
	if _, err := Partition(csr, make([]float32, 7), 3, comm); err == nil {
		t.Error("bad feature length accepted")
	}
}

func TestPartitionNilFeatures(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	comm, _ := wholemem.NewComm(m.NodeDevs(0))
	csr := randomCSR(t, 50, 100, 2)
	p, err := Partition(csr, nil, 0, comm)
	if err != nil {
		t.Fatal(err)
	}
	if p.Feat != nil {
		t.Error("Feat should be nil")
	}
	for _, b := range p.FeatureBytesPerRank() {
		if b != 0 {
			t.Error("feature bytes nonzero without features")
		}
	}
}
