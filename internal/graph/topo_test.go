package graph

import (
	"testing"

	"wholegraph/internal/sim"
	"wholegraph/internal/topostore"
	"wholegraph/internal/wholemem"
)

// TestPartitionPagedMatchesMaterialized: PartitionPaged over a CSR's
// TopoSource view must agree with Partition on everything observable —
// ownership, degrees, edge indices, decoded neighbors, features — with a
// page size small enough that fills span page, row, and rank boundaries.
func TestPartitionPagedMatchesMaterialized(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	comm, err := wholemem.NewComm(m.NodeDevs(0))
	if err != nil {
		t.Fatal(err)
	}
	const n, dim = 500, 3
	csr := randomCSR(t, n, 3000, 42)
	feat := make([]float32, n*dim)
	for i := range feat {
		feat[i] = float32(i)
	}
	mat, err := Partition(csr, feat, dim, comm)
	if err != nil {
		t.Fatal(err)
	}
	// PageEdges 7: every fill crosses rows; rank boundaries land mid-page.
	pg, err := PartitionPaged(CSRTopo{csr}, feat, dim, comm, topostore.Options{PageEdges: 7})
	if err != nil {
		t.Fatal(err)
	}
	if pg.PagedTopo() == nil || pg.Col != nil {
		t.Fatal("paged partition materialized a column array")
	}
	if mat.PagedTopo() != nil {
		t.Fatal("materialized partition has a paged store")
	}
	if got, want := pg.PagedTopo().NumEdges(), csr.NumEdges(); got != want {
		t.Fatalf("paged edge count %d != %d", got, want)
	}
	for v := int64(0); v < n; v++ {
		if pg.Owner[v] != mat.Owner[v] {
			t.Fatalf("owner mismatch for node %d", v)
		}
		gid := pg.Owner[v]
		if pg.Degree(gid) != mat.Degree(gid) {
			t.Fatalf("degree mismatch for node %d", v)
		}
		if pg.FeatRow(gid) != mat.FeatRow(gid) {
			t.Fatalf("feature row mismatch for node %d", v)
		}
		deg := mat.Degree(gid)
		for k := int64(0); k < deg; k++ {
			if pg.EdgeIndex(gid, k) != mat.EdgeIndex(gid, k) {
				t.Fatalf("edge index mismatch at (%d,%d)", v, k)
			}
			if pg.NeighborAt(gid, k) != mat.NeighborAt(gid, k) {
				t.Fatalf("neighbor mismatch at (%d,%d)", v, k)
			}
		}
		nb, want := pg.Neighbors(gid), mat.Neighbors(gid)
		if len(nb) != len(want) {
			t.Fatalf("Neighbors length mismatch for node %d", v)
		}
		for k := range nb {
			if nb[k] != want[k] {
				t.Fatalf("Neighbors mismatch at (%d,%d)", v, k)
			}
		}
	}
	// Features landed in identical shards.
	for r := 0; r < comm.Size(); r++ {
		ms, ps := mat.Feat.Shard(r), pg.Feat.Shard(r)
		if len(ms) != len(ps) {
			t.Fatalf("feature shard %d length mismatch", r)
		}
		for i := range ms {
			if ms[i] != ps[i] {
				t.Fatalf("feature shard %d element %d mismatch", r, i)
			}
		}
	}
	// Device-side page access decodes the same column values.
	dev := comm.Devs[0]
	ts := pg.PagedTopo()
	acc := ts.Begin(dev)
	for e := int64(0); e < csr.NumEdges(); e++ {
		if got, want := acc.At(e), mat.ColValue(e); got != want {
			t.Fatalf("Access.At(%d) = %d, want %d", e, got, want)
		}
	}
	acc.Flush("test")
}

// TestPartitionPagedAccounting: paged structure bytes count only the
// resident RowPtr shards; the virtual column is reported by the store.
func TestPartitionPagedAccounting(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	comm, err := wholemem.NewComm(m.NodeDevs(0))
	if err != nil {
		t.Fatal(err)
	}
	csr := randomCSR(t, 200, 1000, 7)
	p, err := PartitionPaged(CSRTopo{csr}, nil, 0, comm, topostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var structure int64
	for _, b := range p.StructureBytesPerRank() {
		structure += b
	}
	want := (csr.N + int64(comm.Size())) * 8 // RowPtr only, no Col
	if structure != want {
		t.Errorf("paged structure bytes = %d, want %d", structure, want)
	}
	if got := p.PagedTopo().TopoBytes(); got != csr.NumEdges()*8 {
		t.Errorf("virtual topo bytes = %d, want %d", got, csr.NumEdges()*8)
	}
}

// TestPartitionPagedRejectsEdgeWeights: edge weights require a
// materialized column array.
func TestPartitionPagedRejectsEdgeWeights(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(1))
	comm, _ := wholemem.NewComm(m.NodeDevs(0))
	csr := randomCSR(t, 50, 100, 3)
	p, err := PartitionPaged(CSRTopo{csr}, nil, 0, comm, topostore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("AttachEdgeWeights on a paged partition did not panic")
		}
	}()
	p.AttachEdgeWeights(func(u, v int64) float32 { return 1 })
}
