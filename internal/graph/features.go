package graph

import (
	"wholegraph/internal/sim"
	"wholegraph/internal/wholemem"
)

// FeatureSource abstracts the node-feature table behind the partitioned
// graph. The historical backing is a flat *wholemem.Memory[float32] slab
// sharded across the GPUs (the paper's design); the paged feature store
// (internal/featstore) provides an out-of-core alternative whose rows are
// decoded from compressed host-resident pages on demand. Consumers — the
// batch loader, the hot-node cache, inference, serving — gather through
// this interface and never see which backing is installed.
type FeatureSource interface {
	// NumRows is the number of feature rows (== the graph's node count).
	NumRows() int64
	// Dim is the feature dimension.
	Dim() int
	// GatherRows reads len(rows) feature rows into dst (row-major,
	// len(rows)*Dim elements), charging dev's current stream, and returns
	// the charged virtual seconds. Row indices are global feature-row
	// indices (Partitioned.FeatRow).
	GatherRows(dev *sim.Device, rows []int64, dim int, dst []float32, tag string) float64
	// ReadRow copies one row into dst without charging any device —
	// host-side setup and evaluation paths only.
	ReadRow(row int64, dst []float32)
}

// RankedFeatures is implemented by feature sources whose rows have a home
// rank (the wholemem slab: a row lives in its owner GPU's HBM). The
// hot-node cache uses it to split gathers into local and remote traffic;
// sources without placement (the paged host store) don't implement it and
// take the cache's delegating path instead.
type RankedFeatures interface {
	FeatureSource
	// HomeRank returns the communicator rank whose local memory holds row.
	HomeRank(row int64) int
}

// memFeats adapts the sharded wholemem slab to FeatureSource. Charging is
// exactly Memory.GatherRows, so installing the adapter changes no costs.
type memFeats struct {
	mem *wholemem.Memory[float32]
	n   int64
	dim int
}

// MemFeatures wraps a sharded feature slab (n rows by dim) as a
// FeatureSource. Partition installs it automatically; exported for tests
// and for callers that build feature tables by hand.
func MemFeatures(mem *wholemem.Memory[float32], n int64, dim int) FeatureSource {
	return &memFeats{mem: mem, n: n, dim: dim}
}

func (f *memFeats) NumRows() int64 { return f.n }
func (f *memFeats) Dim() int       { return f.dim }

func (f *memFeats) GatherRows(dev *sim.Device, rows []int64, dim int, dst []float32, tag string) float64 {
	return f.mem.GatherRows(dev, rows, dim, dst, tag)
}

func (f *memFeats) ReadRow(row int64, dst []float32) {
	base := row * int64(f.dim)
	r := f.mem.RankOf(base)
	off := base - f.mem.ShardStart(r)
	copy(dst, f.mem.Shard(r)[off:off+int64(f.dim)])
}

func (f *memFeats) HomeRank(row int64) int {
	return f.mem.RankOf(row * int64(f.dim))
}

// Features returns the installed feature source, or nil for a
// structure-only graph.
func (p *Partitioned) Features() FeatureSource { return p.featSrc }

// SetFeatures installs a feature source (the paged store path). The source
// must have N rows of Dim elements; Feat stays nil — wholemem-specific
// consumers (the storage ablation, Fig10's raw-slab gathers) require the
// slab backing and must not be pointed at a paged store.
func (p *Partitioned) SetFeatures(fs FeatureSource) { p.featSrc = fs }

// RowOrig maps a global feature-row index back to the original node ID
// (the inverse of FeatRow ∘ Owner).
func (p *Partitioned) RowOrig(row int64) int64 {
	// rowBase is ascending; ranks are few (GPUs per node), linear scan.
	r := len(p.rowBase) - 1
	for r > 0 && p.rowBase[r] > row {
		r--
	}
	return p.Orig[r][row-p.rowBase[r]]
}
