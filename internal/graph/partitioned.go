package graph

import (
	"fmt"

	"wholegraph/internal/topostore"
	"wholegraph/internal/wholemem"
)

// Partitioned is the multi-GPU graph store of WholeGraph: nodes are
// hash-partitioned to ranks, every edge is stored with its source node, and
// node features are stored on the same GPU as the node. All arrays live in
// multi-GPU distributed shared memory, so any rank can read any of them
// from inside a kernel.
type Partitioned struct {
	Comm *wholemem.Comm
	// N is the number of nodes, Dim the feature dimension.
	N   int64
	Dim int

	// Owner maps an original node ID to its GlobalID.
	Owner []GlobalID
	// Orig maps (rank, local) back to the original node ID.
	Orig [][]int64

	// RowPtr holds, per rank, localN+1 offsets into the rank's edge shard.
	RowPtr *wholemem.Memory[int64]
	// Col holds the destination GlobalIDs, sharded by source rank.
	Col *wholemem.Memory[uint64]
	// Feat holds node features row-major, sharded with the owning rank.
	Feat *wholemem.Memory[float32]
	// EdgeW optionally holds one weight per stored edge, aligned with Col
	// (the paper's edge features e_{s,t} in its message-passing formula).
	EdgeW *wholemem.Memory[float32]

	// rowBase[r] is the global feature-row index of rank r's first node.
	rowBase []int64

	// Paged-topology mode (PartitionPaged): Col is nil, colBase[r] is the
	// global edge index of rank r's first column entry (colBase[parts] the
	// total), and topo serves column pages on demand.
	colBase []int64
	topo    *topostore.Store

	// featSrc serves feature-row gathers: a memFeats adapter over Feat
	// when the graph was partitioned with a slab, or a paged store
	// installed with SetFeatures. Nil when the graph has no features.
	featSrc FeatureSource
}

// Partition distributes csr and its node features (row-major, feat[dim*i:]
// for node i; may be nil) across the communicator using the paper's hash
// partitioning. It performs the real data placement and charges each rank's
// allocation/IPC setup cost.
func Partition(csr *CSR, feat []float32, dim int, comm *wholemem.Comm) (*Partitioned, error) {
	parts := comm.Size()
	return PartitionBy(csr, feat, dim, comm, func(v int64) int { return RankFor(v, parts) })
}

// PartitionBy is Partition with an explicit node-to-rank assignment,
// enabling the partition-strategy ablation (hash vs range vs
// community-aware placement). ownerOf must return a rank in [0, comm.Size).
func PartitionBy(csr *CSR, feat []float32, dim int, comm *wholemem.Comm, ownerOf func(v int64) int) (*Partitioned, error) {
	if feat != nil && int64(len(feat)) != csr.N*int64(dim) {
		return nil, fmt.Errorf("graph: feature length %d != N*dim = %d", len(feat), csr.N*int64(dim))
	}
	parts := comm.Size()
	p := &Partitioned{Comm: comm, N: csr.N, Dim: dim}

	// Assign GlobalIDs, locals in original-ID order.
	p.Owner = make([]GlobalID, csr.N)
	p.Orig = make([][]int64, parts)
	for v := int64(0); v < csr.N; v++ {
		r := ownerOf(v)
		if r < 0 || r >= parts {
			return nil, fmt.Errorf("graph: ownerOf(%d) = %d outside [0,%d)", v, r, parts)
		}
		p.Owner[v] = MakeGlobalID(r, int64(len(p.Orig[r])))
		p.Orig[r] = append(p.Orig[r], v)
	}

	// Shard sizes.
	rowSizes := make([]int64, parts)
	edgeSizes := make([]int64, parts)
	featSizes := make([]int64, parts)
	p.rowBase = make([]int64, parts)
	var rows int64
	for r := 0; r < parts; r++ {
		ln := int64(len(p.Orig[r]))
		rowSizes[r] = ln + 1
		featSizes[r] = ln * int64(dim)
		p.rowBase[r] = rows
		rows += ln
		for _, v := range p.Orig[r] {
			edgeSizes[r] += csr.Degree(v)
		}
	}

	p.RowPtr = wholemem.AllocSharded[int64](comm, rowSizes)
	p.Col = wholemem.AllocSharded[uint64](comm, edgeSizes)
	if feat != nil {
		p.Feat = wholemem.AllocSharded[float32](comm, featSizes)
		p.featSrc = MemFeatures(p.Feat, rows, dim)
	}

	// Fill each rank's shards in place (host-side construction).
	for r := 0; r < parts; r++ {
		rp := p.RowPtr.Shard(r)
		col := p.Col.Shard(r)
		var fs []float32
		if feat != nil {
			fs = p.Feat.Shard(r)
		}
		var off int64
		for li, v := range p.Orig[r] {
			rp[li] = off
			for _, d := range csr.Neighbors(v) {
				col[off] = uint64(p.Owner[d])
				off++
			}
			if feat != nil {
				copy(fs[int64(li)*int64(dim):], feat[v*int64(dim):(v+1)*int64(dim)])
			}
		}
		rp[len(p.Orig[r])] = off
	}
	return p, nil
}

// AttachEdgeWeights allocates the per-edge weight table (sharded like the
// edge array) and fills it with w(src, dst) over original node IDs. Edge
// weights live in distributed shared memory like everything else and are
// gathered per sampled edge during batch construction.
func (p *Partitioned) AttachEdgeWeights(w func(u, v int64) float32) {
	if p.topo != nil {
		panic("graph: AttachEdgeWeights requires a materialized column array (paged topology does not store edge weights)")
	}
	sizes := make([]int64, p.Comm.Size())
	for r := range sizes {
		sizes[r] = int64(len(p.Col.Shard(r)))
	}
	p.EdgeW = wholemem.AllocSharded[float32](p.Comm, sizes)
	for r := 0; r < p.Comm.Size(); r++ {
		rp := p.RowPtr.Shard(r)
		col := p.Col.Shard(r)
		ws := p.EdgeW.Shard(r)
		for li, u := range p.Orig[r] {
			for e := rp[li]; e < rp[li+1]; e++ {
				d := GlobalID(col[e])
				v := p.Orig[d.Rank()][d.Local()]
				ws[e] = w(u, v)
			}
		}
	}
}

// LocalCount returns the number of nodes owned by rank r.
func (p *Partitioned) LocalCount(r int) int64 { return int64(len(p.Orig[r])) }

// FeatRow returns the global feature-row index of gid, usable with
// Feat.GatherRows.
func (p *Partitioned) FeatRow(gid GlobalID) int64 {
	return p.rowBase[gid.Rank()] + gid.Local()
}

// Degree returns gid's out-degree (uncharged host read; kernels account
// their rowptr traffic through ChargeAccess).
func (p *Partitioned) Degree(gid GlobalID) int64 {
	base := p.RowPtr.ShardStart(gid.Rank())
	lo := p.RowPtr.Get(base + gid.Local())
	hi := p.RowPtr.Get(base + gid.Local() + 1)
	return hi - lo
}

// NeighborAt returns gid's k-th neighbor (uncharged host read).
func (p *Partitioned) NeighborAt(gid GlobalID, k int64) GlobalID {
	return GlobalID(p.ColValue(p.EdgeIndex(gid, k)))
}

// EdgeIndex returns the global element index (into Col and EdgeW, or the
// paged column store) of gid's k-th edge.
func (p *Partitioned) EdgeIndex(gid GlobalID, k int64) int64 {
	rank := gid.Rank()
	lo := p.RowPtr.Get(p.RowPtr.ShardStart(rank) + gid.Local())
	if p.topo != nil {
		return p.colBase[rank] + lo + k
	}
	return p.Col.ShardStart(rank) + lo + k
}

// Neighbors returns gid's full neighbor list: a shared sub-slice of the
// owning rank's edge shard, or (paged topology) a freshly decoded copy —
// a host-side path; kernels go through the page-aware accessor.
func (p *Partitioned) Neighbors(gid GlobalID) []uint64 {
	rank := gid.Rank()
	base := p.RowPtr.ShardStart(rank)
	lo := p.RowPtr.Get(base + gid.Local())
	hi := p.RowPtr.Get(base + gid.Local() + 1)
	if p.topo != nil {
		e0 := p.colBase[rank] + lo
		out := make([]uint64, hi-lo)
		for i := range out {
			out[i] = p.topo.ReadEdge(e0 + int64(i))
		}
		return out
	}
	return p.Col.Shard(rank)[lo:hi]
}

// StructureBytesPerRank reports the adjacency bytes held by each rank
// (Table IV accounting). In paged-topology mode the column array is
// virtual — only the resident RowPtr shard counts; column pages live in
// the byte-budgeted BlockCaches, reported by the store's Stats.
func (p *Partitioned) StructureBytesPerRank() []int64 {
	out := make([]int64, p.Comm.Size())
	for r := range out {
		out[r] = int64(len(p.RowPtr.Shard(r))) * 8
		if p.topo == nil {
			out[r] += int64(len(p.Col.Shard(r))) * 8
		}
	}
	return out
}

// RangeOwner returns a contiguous-block node-to-rank assignment (rank r
// owns IDs [r*N/parts, (r+1)*N/parts)), the simplest alternative to
// hashing.
func RangeOwner(n int64, parts int) func(int64) int {
	chunk := (n + int64(parts) - 1) / int64(parts)
	return func(v int64) int { return int(v / chunk) }
}

// FeatureBytesPerRank reports the feature bytes held by each rank.
func (p *Partitioned) FeatureBytesPerRank() []int64 {
	out := make([]int64, p.Comm.Size())
	if p.Feat == nil {
		return out
	}
	for r := range out {
		out[r] = int64(len(p.Feat.Shard(r))) * 4
	}
	return out
}
