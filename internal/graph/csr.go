// Package graph provides graph storage: host-side CSR (used by the
// CPU-resident baseline frameworks) and the hash-partitioned multi-GPU
// storage of WholeGraph (paper §III-B), where every node is assigned a
// GlobalID of (rank, localID), edges live with their source node, and node
// features live on the same GPU as the node.
package graph

import (
	"fmt"
	"sort"
)

// COO is an edge list over nodes [0, N).
type COO struct {
	N        int64
	Src, Dst []int64
}

// CSR is a host-side compressed sparse row adjacency structure.
type CSR struct {
	N      int64
	RowPtr []int64 // len N+1
	Col    []int64 // len RowPtr[N]
}

// FromCOO builds a CSR from an edge list. When undirected is set, each edge
// is inserted in both directions (the paper stores ogbn-papers100M as an
// undirected graph, doubling its 1.6 B edges). Duplicate edges are kept;
// neighbor lists are sorted for determinism.
func FromCOO(coo COO, undirected bool) (*CSR, error) {
	n := coo.N
	if len(coo.Src) != len(coo.Dst) {
		return nil, fmt.Errorf("graph: src/dst length mismatch %d vs %d", len(coo.Src), len(coo.Dst))
	}
	deg := make([]int64, n+1)
	count := func(s, d int64) error {
		if s < 0 || s >= n || d < 0 || d >= n {
			return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", s, d, n)
		}
		deg[s+1]++
		return nil
	}
	for i := range coo.Src {
		if err := count(coo.Src[i], coo.Dst[i]); err != nil {
			return nil, err
		}
		if undirected {
			deg[coo.Dst[i]+1]++
		}
	}
	rowptr := deg
	for i := int64(0); i < n; i++ {
		rowptr[i+1] += rowptr[i]
	}
	col := make([]int64, rowptr[n])
	next := make([]int64, n)
	copy(next, rowptr[:n])
	put := func(s, d int64) {
		col[next[s]] = d
		next[s]++
	}
	for i := range coo.Src {
		put(coo.Src[i], coo.Dst[i])
		if undirected {
			put(coo.Dst[i], coo.Src[i])
		}
	}
	for v := int64(0); v < n; v++ {
		nb := col[rowptr[v]:rowptr[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return &CSR{N: n, RowPtr: rowptr, Col: col}, nil
}

// NumEdges returns the number of stored (directed) edges.
func (c *CSR) NumEdges() int64 { return c.RowPtr[c.N] }

// Degree returns the out-degree of node v.
func (c *CSR) Degree(v int64) int64 { return c.RowPtr[v+1] - c.RowPtr[v] }

// Neighbors returns node v's neighbor list (shared storage; do not mutate).
func (c *CSR) Neighbors(v int64) []int64 { return c.Col[c.RowPtr[v]:c.RowPtr[v+1]] }

// MaxDegree returns the largest out-degree in the graph.
func (c *CSR) MaxDegree() int64 {
	var m int64
	for v := int64(0); v < c.N; v++ {
		if d := c.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// StructureBytes returns the memory footprint of the adjacency arrays,
// using the paper's accounting of 8 bytes per stored edge plus row offsets.
func (c *CSR) StructureBytes() int64 {
	return 8*int64(len(c.Col)) + 8*int64(len(c.RowPtr))
}
