package wholemem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wholegraph/internal/sim"
)

func testComm(t *testing.T) (*sim.Machine, *Comm) {
	t.Helper()
	m := sim.NewMachine(sim.DGXA100(1))
	c, err := NewComm(m.NodeDevs(0))
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

func TestNewCommRejectsCrossNode(t *testing.T) {
	m := sim.NewMachine(sim.DGXA100(2))
	if _, err := NewComm(m.Devs); err == nil {
		t.Error("cross-node communicator accepted")
	}
	if _, err := NewComm(nil); err == nil {
		t.Error("empty communicator accepted")
	}
}

func TestAllocPartition(t *testing.T) {
	_, c := testComm(t)
	mem := Alloc[float32](c, 1000)
	if mem.Len() != 1000 {
		t.Fatalf("len = %d", mem.Len())
	}
	if mem.Bytes() != 4000 {
		t.Fatalf("bytes = %d", mem.Bytes())
	}
	total := int64(0)
	for r := 0; r < c.Size(); r++ {
		total += int64(len(mem.Shard(r)))
		if mem.ShardStart(r) != int64(r)*125 {
			t.Errorf("shard %d start = %d, want %d", r, mem.ShardStart(r), r*125)
		}
	}
	if total != 1000 {
		t.Fatalf("shards cover %d elements", total)
	}
}

func TestAllocChargesSetup(t *testing.T) {
	m, c := testComm(t)
	Alloc[float32](c, 1<<28) // 1 GB total
	// The paper: setup takes tens to ~200 ms. Our 1 GB allocation should
	// land in tens of milliseconds (malloc + IPC exchange + barrier).
	tm := m.MaxTime()
	if tm < 1e-3 || tm > 0.3 {
		t.Errorf("setup time = %g s, want tens of ms", tm)
	}
}

func TestRankOfAndGetSet(t *testing.T) {
	_, c := testComm(t)
	mem := Alloc[int64](c, 777) // uneven split
	for i := int64(0); i < 777; i++ {
		mem.Set(i, i*3)
	}
	for i := int64(0); i < 777; i++ {
		if got := mem.Get(i); got != i*3 {
			t.Fatalf("Get(%d) = %d, want %d", i, got, i*3)
		}
	}
	if mem.RankOf(0) != 0 {
		t.Error("RankOf(0) != 0")
	}
	if mem.RankOf(776) != c.Size()-1 {
		t.Errorf("RankOf(last) = %d", mem.RankOf(776))
	}
}

func TestAllocShardedUneven(t *testing.T) {
	_, c := testComm(t)
	sizes := []int64{10, 0, 5, 100, 1, 0, 7, 2}
	mem := AllocSharded[int32](c, sizes)
	if mem.Len() != 125 {
		t.Fatalf("len = %d, want 125", mem.Len())
	}
	// Global index 10 must land at the start of rank 2 (rank 1 is empty).
	if r := mem.RankOf(10); r != 2 {
		t.Errorf("RankOf(10) = %d, want 2", r)
	}
	if r := mem.RankOf(124); r != 7 {
		t.Errorf("RankOf(124) = %d, want 7", r)
	}
	mem.Set(10, 42)
	if mem.Shard(2)[0] != 42 {
		t.Error("Set did not land in rank 2 shard")
	}
}

func TestGatherRows(t *testing.T) {
	m, c := testComm(t)
	const n, dim = 64, 4
	mem := Alloc[float32](c, n*dim)
	for i := int64(0); i < n*dim; i++ {
		mem.Set(i, float32(i))
	}
	m.Reset()
	d := c.Devs[3]
	rows := []int64{0, 63, 17, 17, 5}
	dst := make([]float32, len(rows)*dim)
	dt := mem.GatherRows(d, rows, dim, dst, "gather")
	for i, row := range rows {
		for j := 0; j < dim; j++ {
			want := float32(row*dim + int64(j))
			if dst[i*dim+j] != want {
				t.Fatalf("dst[%d,%d] = %g, want %g", i, j, dst[i*dim+j], want)
			}
		}
	}
	if dt <= 0 || d.Now() != dt {
		t.Errorf("gather time %g, clock %g", dt, d.Now())
	}
	if d.Stats.RemoteBytes == 0 {
		t.Error("no remote traffic charged for cross-rank gather")
	}
}

func TestGatherElemsAndScatter(t *testing.T) {
	m, c := testComm(t)
	mem := Alloc[int64](c, 256)
	for i := int64(0); i < 256; i++ {
		mem.Set(i, 1000+i)
	}
	m.Reset()
	d := c.Devs[0]
	idx := []int64{255, 0, 128, 9}
	dst := make([]int64, 4)
	mem.GatherElems(d, idx, dst, "g")
	for i, gi := range idx {
		if dst[i] != 1000+gi {
			t.Fatalf("elem %d = %d", gi, dst[i])
		}
	}
	// Scatter rows of width 2.
	src := []int64{-1, -2, -3, -4}
	mem.ScatterRows(d, []int64{10, 100}, 2, src, "s")
	if mem.Get(20) != -1 || mem.Get(21) != -2 || mem.Get(200) != -3 || mem.Get(201) != -4 {
		t.Error("scatter wrote wrong locations")
	}
}

func TestReadRangeCrossesShards(t *testing.T) {
	m, c := testComm(t)
	mem := Alloc[int32](c, 80) // 10 per shard
	for i := int64(0); i < 80; i++ {
		mem.Set(i, int32(i))
	}
	m.Reset()
	dst := make([]int32, 35)
	mem.ReadRange(c.Devs[2], 5, 35, dst, "r")
	for i := int64(0); i < 35; i++ {
		if dst[i] != int32(5+i) {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], 5+i)
		}
	}
}

func TestRemoteCostExceedsLocal(t *testing.T) {
	m, c := testComm(t)
	const n, dim = 8000, 128
	mem := Alloc[float32](c, n*dim)
	d := c.Devs[0]
	dst := make([]float32, 1000*dim)

	// All-local rows (rank 0 holds the first n/8 rows).
	localRows := make([]int64, 1000)
	for i := range localRows {
		localRows[i] = int64(i % 999)
	}
	m.Reset()
	tLocal := mem.GatherRows(d, localRows, dim, dst, "l")

	// All-remote rows (held by rank 7).
	remoteRows := make([]int64, 1000)
	for i := range remoteRows {
		remoteRows[i] = int64(7000 + i%999)
	}
	m.Reset()
	tRemote := mem.GatherRows(d, remoteRows, dim, dst, "r")
	if tRemote <= tLocal {
		t.Errorf("remote gather (%g) not slower than local (%g)", tRemote, tLocal)
	}
}

func TestSmallSegmentsSlower(t *testing.T) {
	// Gathering the same bytes with 4-byte segments must be slower than
	// with 512-byte segments (Figure 8 behaviour).
	m, c := testComm(t)
	mem := Alloc[float32](c, 1<<20)
	d := c.Devs[0]
	nElems := 1 << 16
	idx := make([]int64, nElems)
	rng := rand.New(rand.NewSource(1))
	for i := range idx {
		idx[i] = rng.Int63n(mem.Len())
	}
	m.Reset()
	small := mem.GatherElems(d, idx, make([]float32, nElems), "s")
	rows := make([]int64, nElems/128)
	for i := range rows {
		rows[i] = rng.Int63n(mem.Len()/128 - 1)
	}
	m.Reset()
	big := mem.GatherRows(d, rows, 128, make([]float32, nElems), "b")
	if small <= big {
		t.Errorf("4B-segment gather (%g) not slower than 512B-segment (%g)", small, big)
	}
}

func TestGatherPanicsOffComm(t *testing.T) {
	m2 := sim.NewMachine(sim.DGXA100(2))
	c, err := NewComm(m2.NodeDevs(0))
	if err != nil {
		t.Fatal(err)
	}
	mem := Alloc[float32](c, 100)
	defer func() {
		if recover() == nil {
			t.Error("gather from non-member device did not panic")
		}
	}()
	mem.GatherElems(m2.NodeDevs(1)[0], []int64{0}, make([]float32, 1), "x")
}

func TestFillFrom(t *testing.T) {
	_, c := testComm(t)
	mem := Alloc[float32](c, 100)
	src := make([]float32, 100)
	for i := range src {
		src[i] = float32(i) * 0.5
	}
	mem.FillFrom(src)
	for i := int64(0); i < 100; i++ {
		if mem.Get(i) != float32(i)*0.5 {
			t.Fatalf("FillFrom mismatch at %d", i)
		}
	}
}

func TestRankOfProperty(t *testing.T) {
	_, c := testComm(t)
	mem := AllocSharded[int64](c, []int64{3, 0, 0, 17, 1, 0, 40, 9})
	f := func(raw uint32) bool {
		i := int64(raw) % mem.Len()
		r := mem.RankOf(i)
		// The index must lie inside rank r's [start, start+len) range.
		start := mem.ShardStart(r)
		return i >= start && i < start+int64(len(mem.Shard(r)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGetSetRoundTripProperty(t *testing.T) {
	_, c := testComm(t)
	mem := Alloc[int64](c, 509) // prime => uneven shards
	f := func(raw uint32, v int64) bool {
		i := int64(raw) % mem.Len()
		mem.Set(i, v)
		return mem.Get(i) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStorageKinds(t *testing.T) {
	m, c := testComm(t)
	const n, dim = 1 << 14, 128
	kinds := []Kind{DeviceP2P, DeviceUM, PinnedHost}
	names := []string{"device-p2p", "device-um", "pinned-host"}
	times := make([]float64, len(kinds))
	rng := rand.New(rand.NewSource(5))
	rows := make([]int64, 2048)
	for i := range rows {
		rows[i] = rng.Int63n(n - 1)
	}
	for i, k := range kinds {
		mem := AllocKind[float32](c, n*dim, k)
		if mem.Kind() != k || k.String() != names[i] {
			t.Fatalf("kind bookkeeping wrong for %v", k)
		}
		for j := int64(0); j < 256; j++ {
			mem.Set(j, float32(j))
		}
		m.Reset()
		dst := make([]float32, len(rows)*dim)
		times[i] = mem.GatherRows(c.Devs[0], rows, dim, dst, "k")
		// Data correctness is kind-independent.
		if dst[0] != float32(rows[0]*dim) && rows[0]*dim < 256 {
			t.Fatal("gather returned wrong data")
		}
	}
	// The paper's ordering: peer access < UM < host over PCIe.
	if !(times[0] < times[1] && times[1] < times[2]) {
		t.Errorf("gather times not ordered P2P < UM < pinned-host: %v", times)
	}
}

func TestWithKindRelabels(t *testing.T) {
	_, c := testComm(t)
	mem := Alloc[int64](c, 64)
	if mem.Kind() != DeviceP2P {
		t.Fatal("default kind should be DeviceP2P")
	}
	if got := mem.WithKind(PinnedHost).Kind(); got != PinnedHost {
		t.Fatalf("WithKind did not stick: %v", got)
	}
}
