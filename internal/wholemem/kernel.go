package wholemem

import (
	"fmt"

	"wholegraph/internal/sim"
)

// Kernel-side operations: they move real data and charge the accessing
// device's clock with the local/remote cost split. Remote traffic goes over
// the NVLink peer-access model with the actual contiguous segment size, so
// small-segment reads pay the Figure 8 bandwidth penalty.

// RankOfDevice returns the communicator rank of device d, or -1 if d is not
// part of the communicator.
func (c *Comm) RankOfDevice(d *sim.Device) int {
	for r, dev := range c.Devs {
		if dev == d {
			return r
		}
	}
	return -1
}

// mustRank panics if d is not in the communicator; kernels can only run on
// ranks that opened the IPC handles.
func (c *Comm) mustRank(d *sim.Device) int {
	r := c.RankOfDevice(d)
	if r < 0 {
		panic(fmt.Sprintf("wholemem: device %d did not open this allocation's IPC handles", d.ID))
	}
	return r
}

// splitBytes returns (localBytes, remoteBytes) for nElem elements of which
// nLocal are on the caller's rank.
func (m *Memory[T]) splitBytes(nLocal, nElem int64) (float64, float64) {
	lb := float64(nLocal * m.eb)
	rb := float64((nElem - nLocal) * m.eb)
	return lb, rb
}

// GatherRows gathers rows (each dim consecutive elements, row r starting at
// global element r*dim) into dst, which must hold len(rows)*dim elements.
// This is the single-kernel shared-memory global gather of Figure 4 (right):
// one launch, hardware handles the remote traffic.
func (m *Memory[T]) GatherRows(d *sim.Device, rows []int64, dim int, dst []T, tag string) float64 {
	if int64(len(dst)) < int64(len(rows))*int64(dim) {
		panic("wholemem: GatherRows dst too small")
	}
	rank := m.comm.mustRank(d)
	var nLocal int64
	for i, row := range rows {
		start := row * int64(dim)
		r, off := m.locate(start)
		if r == rank {
			nLocal += int64(dim)
		}
		copy(dst[i*dim:(i+1)*dim], m.shards[r][off:off+int64(dim)])
	}
	lb, rb := m.splitBytes(nLocal, int64(len(rows))*int64(dim))
	dst2 := float64(int64(len(rows)) * int64(dim) * m.eb) // dst write
	return d.Kernel(m.accessCost(lb, rb, float64(int64(dim)*m.eb), dst2, tag))
}

// GatherElems gathers single elements at the given global indices into dst.
// Segment size is one element, the worst point of the Figure 8 curve.
func (m *Memory[T]) GatherElems(d *sim.Device, idx []int64, dst []T, tag string) float64 {
	if len(dst) < len(idx) {
		panic("wholemem: GatherElems dst too small")
	}
	rank := m.comm.mustRank(d)
	var nLocal int64
	for i, gi := range idx {
		r, off := m.locate(gi)
		if r == rank {
			nLocal++
		}
		dst[i] = m.shards[r][off]
	}
	lb, rb := m.splitBytes(nLocal, int64(len(idx)))
	return d.Kernel(m.accessCost(lb, rb, float64(m.eb), float64(int64(len(idx))*m.eb), tag))
}

// ScatterRows writes rows from src into the allocation at the given row
// indices (row r occupies dim consecutive elements starting at r*dim).
func (m *Memory[T]) ScatterRows(d *sim.Device, rows []int64, dim int, src []T, tag string) float64 {
	if int64(len(src)) < int64(len(rows))*int64(dim) {
		panic("wholemem: ScatterRows src too small")
	}
	rank := m.comm.mustRank(d)
	var nLocal int64
	for i, row := range rows {
		start := row * int64(dim)
		r, off := m.locate(start)
		if r == rank {
			nLocal += int64(dim)
		}
		copy(m.shards[r][off:off+int64(dim)], src[i*dim:(i+1)*dim])
	}
	lb, rb := m.splitBytes(nLocal, int64(len(rows))*int64(dim))
	return d.Kernel(m.accessCost(lb, rb, float64(int64(dim)*m.eb),
		float64(int64(len(rows))*int64(dim)*m.eb), tag))
}

// ReadRange reads count consecutive elements starting at global index start
// into dst. Contiguous ranges achieve near-peak bandwidth (large segments).
func (m *Memory[T]) ReadRange(d *sim.Device, start, count int64, dst []T, tag string) float64 {
	if int64(len(dst)) < count {
		panic("wholemem: ReadRange dst too small")
	}
	rank := m.comm.mustRank(d)
	var nLocal int64
	for i := int64(0); i < count; {
		r, off := m.locate(start + i)
		n := int64(len(m.shards[r])) - off
		if n > count-i {
			n = count - i
		}
		copy(dst[i:i+n], m.shards[r][off:off+n])
		if r == rank {
			nLocal += n
		}
		i += n
	}
	lb, rb := m.splitBytes(nLocal, count)
	cost := m.accessCost(lb, rb, 4096, float64(count*m.eb), tag)
	// Sequential local reads stream rather than random-access.
	cost.StreamBytes += cost.RandBytes
	cost.RandBytes = 0
	return d.Kernel(cost)
}

// ChargeAccess charges d for a kernel that already moved its data through
// host-side Get/Set during construction of an op-specific structure. It
// exists so composite ops (e.g. the sampler, which interleaves reads with
// computation) can account their traffic in one launch instead of one
// launch per Memory call.
func (m *Memory[T]) ChargeAccess(d *sim.Device, localElems, remoteElems int64, segBytes float64, tag string) float64 {
	return d.Kernel(m.accessCost(float64(localElems*m.eb), float64(remoteElems*m.eb), segBytes, 0, tag))
}
