package wholemem

import (
	"fmt"

	"wholegraph/internal/sim"
)

// Kind selects the physical backing of a shared allocation. The real
// WholeMemory library offers the same choice of memory types; the paper's
// Table I measurement is the argument for the peer-access default.
type Kind int

const (
	// DeviceP2P stripes the allocation across device memories and maps
	// them with CUDA IPC; remote traffic crosses NVLink via GPUDirect
	// peer access. This is WholeGraph's design and the default.
	DeviceP2P Kind = iota
	// DeviceUM stripes across device memories under Unified Memory:
	// non-resident accesses go through the page-fault migration path,
	// an order of magnitude slower than peer access.
	DeviceUM
	// PinnedHost places the whole allocation in pinned host memory,
	// accessed zero-copy from kernels over each GPU's PCIe share. This is
	// the storage the host-memory baselines effectively use.
	PinnedHost
)

// String returns the kind's display name.
func (k Kind) String() string {
	switch k {
	case DeviceP2P:
		return "device-p2p"
	case DeviceUM:
		return "device-um"
	case PinnedHost:
		return "pinned-host"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kind returns the allocation's backing kind.
func (m *Memory[T]) Kind() Kind { return m.kind }

// AllocKind is Alloc with an explicit backing kind.
func AllocKind[T Elem](c *Comm, n int64, kind Kind) *Memory[T] {
	return Alloc[T](c, n).WithKind(kind)
}

// WithKind sets the allocation's backing kind and returns it. In the
// simulation the kind only selects the cost model, so re-labelling an
// existing allocation (e.g. a graph store's feature table) stands in for
// allocating it differently.
func (m *Memory[T]) WithKind(k Kind) *Memory[T] {
	m.kind = k
	return m
}

// accessCost converts an access pattern (bytes split local/remote with a
// segment size) into a kernel cost under the allocation's kind.
func (m *Memory[T]) accessCost(localBytes, remoteBytes, segBytes, dstStreamBytes float64, tag string) sim.KernelCost {
	c := sim.KernelCost{StreamBytes: dstStreamBytes, Tag: tag}
	switch m.kind {
	case DeviceUM:
		c.RandBytes = localBytes
		c.UMBytes = remoteBytes
	case PinnedHost:
		// Everything lives in host memory: even the "local" share crosses
		// PCIe.
		c.HostZeroCopyBytes = localBytes + remoteBytes
		c.HostSegBytes = segBytes
	default:
		c.RandBytes = localBytes
		c.RemoteBytes = remoteBytes
		c.RemoteSegBytes = segBytes
	}
	return c
}
