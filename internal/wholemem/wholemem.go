// Package wholemem implements the multi-GPU distributed shared memory
// library of WholeGraph (paper §III-B) on top of the simulated machine.
//
// Real WholeGraph allocates one chunk per GPU with cudaMalloc, exports each
// chunk with cudaIpcGetMemHandle, AllGathers the handles across the
// one-process-per-GPU ranks, opens them with cudaIpcOpenMemHandle and stores
// the mapped pointers in a per-device Memory Pointer Table, after which any
// GPU can load/store any other GPU's memory from inside a CUDA kernel over
// NVLink. This package reproduces that protocol: chunks are Go slices, IPC
// handles are exchanged through a simulated AllGather that charges the setup
// cost, and kernel-side accesses charge the local-vs-remote cost model.
package wholemem

import (
	"fmt"

	"wholegraph/internal/sim"
)

// Comm is the communicator of one machine node: the set of device ranks
// that share memory with each other (peer access works within a node).
type Comm struct {
	Devs []*sim.Device
}

// NewComm creates a communicator over the devices of one machine node.
// All devices must belong to the same node: NVLink peer access does not
// cross node boundaries.
func NewComm(devs []*sim.Device) (*Comm, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("wholemem: empty communicator")
	}
	node := devs[0].Node
	for _, d := range devs {
		if d.Node != node {
			return nil, fmt.Errorf("wholemem: device %d is on node %d, communicator is on node %d",
				d.ID, d.Node, node)
		}
	}
	return &Comm{Devs: devs}, nil
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.Devs) }

// Elem constrains the element types a Memory can hold. The fixed set keeps
// element sizes known without unsafe.
type Elem interface {
	~float32 | ~int32 | ~int64 | ~uint32 | ~uint64 | ~int8
}

func elemBytes[T Elem]() int64 {
	var v T
	switch any(v).(type) {
	case float32, int32, uint32:
		return 4
	case int64, uint64:
		return 8
	case int8:
		return 1
	}
	// All cases of Elem are covered above; ~-types dispatch via the
	// underlying type of the zero value, so this is unreachable.
	panic("wholemem: unknown element type")
}

// ipcHandle stands in for a cudaIpcMemHandle_t: an opaque token a peer
// process converts back into a device pointer.
type ipcHandle struct {
	rank int
	mem  int // allocation serial within the rank
}

// Memory is one distributed shared allocation: n elements of type T
// partitioned across the communicator's devices. The partition is either
// equal chunks (Alloc) or caller-controlled shard sizes (AllocSharded),
// which is how the graph layer stores hash-partitioned nodes.
type Memory[T Elem] struct {
	comm   *Comm
	n      int64
	shards [][]T   // pointer table entry per rank, as mapped by IPC
	starts []int64 // global element index where each shard begins
	eb     int64
	kind   Kind
}

// Alloc creates a shared allocation of n elements split into near-equal
// chunks across the communicator, performing (and charging) the full IPC
// setup protocol on every rank's clock.
func Alloc[T Elem](c *Comm, n int64) *Memory[T] {
	k := int64(c.Size())
	chunk := (n + k - 1) / k
	sizes := make([]int64, k)
	left := n
	for i := range sizes {
		s := chunk
		if s > left {
			s = left
		}
		sizes[i] = s
		left -= s
	}
	return AllocSharded[T](c, sizes)
}

// AllocSharded creates a shared allocation with an explicit number of
// elements on each rank. len(sizes) must equal the communicator size.
func AllocSharded[T Elem](c *Comm, sizes []int64) *Memory[T] {
	if len(sizes) != c.Size() {
		panic(fmt.Sprintf("wholemem: %d shard sizes for %d ranks", len(sizes), c.Size()))
	}
	m := &Memory[T]{comm: c, eb: elemBytes[T]()}
	handles := make([]ipcHandle, c.Size())
	// Step 1: every rank cudaMallocs its local chunk and exports an IPC
	// handle (cudaIpcGetMemHandle).
	for r, d := range c.Devs {
		m.starts = append(m.starts, m.n)
		m.n += sizes[r]
		shard := make([]T, sizes[r])
		m.shards = append(m.shards, shard)
		d.Malloc(float64(sizes[r] * m.eb))
		handles[r] = ipcHandle{rank: r, mem: len(m.shards)}
	}
	// Step 2: AllGather the handles so each rank holds all of them, issued
	// through the step-level engine so the ring transfers occupy the links
	// and show up in comm traces like every other collective.
	if len(c.Devs) > 1 {
		sim.StartRingAllGather(c.Devs, float64(len(handles)*16), sim.CollOpts{Tag: "ipc.allgather"}).Wait()
	}
	for _, d := range c.Devs {
		d.IdleFor(d.Machine().Cfg.Link.IPCExchange, "ipc")
	}
	// Step 3: each rank opens every peer handle (cudaIpcOpenMemHandle) and
	// fills its Memory Pointer Table. In this simulation the table is the
	// shared shards slice itself; the handles carry no information beyond
	// identifying the shard, exactly like the opaque CUDA handle.
	for r := range handles {
		if handles[r].rank != r {
			panic("wholemem: handle exchange corrupted")
		}
	}
	sim.Barrier(c.Devs)
	return m
}

// Len returns the total number of elements.
func (m *Memory[T]) Len() int64 { return m.n }

// Bytes returns the total allocation size in bytes.
func (m *Memory[T]) Bytes() int64 { return m.n * m.eb }

// ElemBytes returns the element size in bytes.
func (m *Memory[T]) ElemBytes() int64 { return m.eb }

// Comm returns the communicator the memory is allocated over.
func (m *Memory[T]) Comm() *Comm { return m.comm }

// RankOf returns the rank holding global element index i.
func (m *Memory[T]) RankOf(i int64) int {
	// Shards are contiguous in global index order; binary search.
	lo, hi := 0, len(m.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.starts[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Shard returns rank r's local slice (the memory behind its pointer-table
// entry). Host-side construction code uses this to fill data in place.
func (m *Memory[T]) Shard(r int) []T { return m.shards[r] }

// ShardStart returns the global element index where rank r's shard begins.
func (m *Memory[T]) ShardStart(r int) int64 { return m.starts[r] }

// locate converts a global index to (rank, local offset).
func (m *Memory[T]) locate(i int64) (int, int64) {
	r := m.RankOf(i)
	return r, i - m.starts[r]
}

// Get reads element i without charging any cost. It is for host-side graph
// construction and tests; kernels use the charged bulk operations.
func (m *Memory[T]) Get(i int64) T {
	r, off := m.locate(i)
	return m.shards[r][off]
}

// Set writes element i without charging any cost (host-side construction).
func (m *Memory[T]) Set(i int64, v T) {
	r, off := m.locate(i)
	m.shards[r][off] = v
}

// FillFrom copies src into the allocation starting at global element 0.
func (m *Memory[T]) FillFrom(src []T) {
	if int64(len(src)) > m.n {
		panic("wholemem: FillFrom source larger than allocation")
	}
	off := int64(0)
	for r := range m.shards {
		s := m.shards[r]
		for j := range s {
			if off >= int64(len(src)) {
				return
			}
			s[j] = src[off]
			off++
		}
	}
}
