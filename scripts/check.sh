#!/bin/sh
# Tier-1 verification: vet, build, and race-test the whole module.
# The race detector is part of the contract — parallel device execution
# (internal/sim/exec.go) must stay data-race free, and the equivalence
# tests in internal/train and internal/bench prove serial and parallel
# runs are bit-identical.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...
