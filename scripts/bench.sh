#!/bin/sh
# Hot-path benchmark runner: measures the headline benchmarks (plus the
# ablation baselines they are compared against) with -benchmem and
# -count=5, and distills the raw `go test` output into two JSON baselines:
#
#   BENCH_hotpaths.json — min/median ns/op, B/op and allocs/op of the core
#     hot paths (the perf trajectory baseline for host cost).
#   BENCH_pipeline.json — the sequential-vs-overlapped epoch pair: wall
#     clock ns/op plus the simulated virtual-ms/epoch, the number the
#     dual-stream prefetch pipeline improves.
#   BENCH_serving.json — the online serving experiment (wgbench -exp
#     serving): dynamic batching vs the batch=1 baseline at the same
#     offered load — throughput, shed/timeout counts, p50/p99 and SLO
#     attainment per mode, in virtual time.
#   BENCH_comms.json — the gradient-overlap ablation (wgbench -exp
#     abl-overlap-grads): blocking vs bucketed copy-stream AllReduce
#     epoch times, per-link NVLink/IB traffic and collective stream time.
#   BENCH_graph.json — the step capture/replay ablation (wgbench -exp
#     abl-graph): eager vs graph-replay epoch times, measured host ns and
#     allocations per iteration, capture/replay counts, loss bit-identity.
#   BENCH_featstore.json — the out-of-core headline (wgbench -exp
#     featstore-full -scale 1.0): the papers100M-shaped graph trained
#     end-to-end through the paged feature AND topology stores at full
#     scale, the complete 1.6 B-pair edge list served page-by-page with no
#     cap — virtual epoch time, BlockCache hit rates, encoded/resident
#     bytes for both stores, and host RSS vs the ~80 GiB of slabs it
#     avoids. Takes a few minutes of wall clock; the flat-vs-paged
#     ablation (abl-featstore) runs in CI and its numbers live in
#     EXPERIMENTS.md.
#   BENCH_oocgraph.json — the out-of-core topology ablation (wgbench -exp
#     abl-oocgraph): in-RAM CSR vs paged-LRU vs paged+prefetch vs
#     paged+prefetch+admission at a fixed 1/4 byte budget — virtual epoch
#     times, hit rates, prefetch-hit and admission-reject counters, loss
#     bit-identity.
#   BENCH_ann.json — the ANN retrieval experiment (wgbench -exp abl-ann):
#     the recall@10 vs per-query virtual latency curve over efSearch,
#     index build virtual time, the HNSW-vs-brute-force speedup, and the
#     end-to-end retrieval serving row (recall next to p50/p99/SLO).
#   BENCH_sched.json — the whole-step scheduler ablation (wgbench -exp
#     abl-sched): plain capture/replay vs DAG list scheduling of the same
#     captured step across arch x nodes x gradient-overlap cells — virtual
#     epoch times, speedup, scheduled-replay counts, loss bit-identity,
#     plus the aggregate step-graph counters.
#
# Run before and after a perf PR and compare (benchstat on the raw output
# works too; it is kept alongside each JSON).
#
# Usage: scripts/bench.sh [hotpaths.json [pipeline.json [serving.json [comms.json [graph.json [featstore.json [oocgraph.json [ann.json [sched.json]]]]]]]]]
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_hotpaths.json}"
PIPE_OUT="${2:-BENCH_pipeline.json}"
SERVE_OUT="${3:-BENCH_serving.json}"
COMMS_OUT="${4:-BENCH_comms.json}"
GRAPH_OUT="${5:-BENCH_graph.json}"
FEAT_OUT="${6:-BENCH_featstore.json}"
OOC_OUT="${7:-BENCH_oocgraph.json}"
ANN_OUT="${8:-BENCH_ann.json}"
SCHED_OUT="${9:-BENCH_sched.json}"
PATTERN='BenchmarkEndToEndEpoch$|BenchmarkFig10Gather|BenchmarkSpMMNative|BenchmarkSpMMPyGStyle|BenchmarkAppendUnique$|BenchmarkAppendUniqueSort|BenchmarkAlg1Sampling'
PIPE_PATTERN='BenchmarkPipelineEpochSequential|BenchmarkPipelineEpochOverlapped'

# distill RAW OUT: median/min ns/op, B/op, allocs/op and any virtual-ms
# custom metrics from 5 repetitions of each benchmark.
distill() {
    raw="$1"; out="$2"
    awk -v raw="$raw" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)        # strip -GOMAXPROCS suffix
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op")               bop[name]    = bop[name] " " $i
        if ($(i+1) == "allocs/op")          allocs[name] = allocs[name] " " $i
        if ($(i+1) == "virtual-ms/epoch")   vms[name]    = vms[name] " " $i
    }
}
function stats(s, arr,   n, i, t) {
    n = split(s, arr, " ")
    # insertion sort (n == 5)
    for (i = 2; i <= n; i++)
        for (j = i; j > 1 && arr[j-1] + 0 > arr[j] + 0; j--) {
            t = arr[j]; arr[j] = arr[j-1]; arr[j-1] = t
        }
    return n
}
END {
    printf "{\n  \"source\": \"%s\",\n  \"benchmarks\": [\n", raw
    first = 1
    for (name in ns) order[++cnt] = name
    # stable output order: sort names
    for (i = 2; i <= cnt; i++)
        for (j = i; j > 1 && order[j-1] > order[j]; j--) {
            t = order[j]; order[j] = order[j-1]; order[j-1] = t
        }
    for (i = 1; i <= cnt; i++) {
        name = order[i]
        n = stats(ns[name], a)
        med_ns = a[int((n+1)/2)]; min_ns = a[1]
        n = stats(bop[name], b); med_b = (n ? b[int((n+1)/2)] : 0)
        n = stats(allocs[name], c); med_al = (n ? c[int((n+1)/2)] : 0)
        if (!first) printf ",\n"
        first = 0
        printf "    {\"name\": \"%s\", \"min_ns_per_op\": %s, \"median_ns_per_op\": %s, \"median_bytes_per_op\": %s, \"median_allocs_per_op\": %s", \
            name, min_ns, med_ns, med_b, med_al
        if (vms[name] != "") {
            n = stats(vms[name], v)
            printf ", \"median_virtual_ms_per_epoch\": %s", v[int((n+1)/2)]
        }
        printf "}"
    }
    printf "\n  ]\n}\n"
}' "$raw" > "$out"
}

RAW="${OUT%.json}.txt"
go test -run '^$' -bench "$PATTERN" -benchmem -count=5 . | tee "$RAW"
distill "$RAW" "$OUT"
echo "wrote $OUT (raw output in $RAW)"

PIPE_RAW="${PIPE_OUT%.json}.txt"
go test -run '^$' -bench "$PIPE_PATTERN" -benchmem -count=5 . | tee "$PIPE_RAW"
distill "$PIPE_RAW" "$PIPE_OUT"
echo "wrote $PIPE_OUT (raw output in $PIPE_RAW)"

go run ./cmd/wgbench -exp serving -json "$SERVE_OUT"
echo "wrote $SERVE_OUT"

go run ./cmd/wgbench -exp abl-overlap-grads -json "$COMMS_OUT"
echo "wrote $COMMS_OUT"

go run ./cmd/wgbench -exp abl-graph -json "$GRAPH_OUT"
echo "wrote $GRAPH_OUT"

go run ./cmd/wgbench -exp featstore-full -scale 1.0 -json "$FEAT_OUT"
echo "wrote $FEAT_OUT"

go run ./cmd/wgbench -exp abl-oocgraph -json "$OOC_OUT"
echo "wrote $OOC_OUT"

go run ./cmd/wgbench -exp abl-ann -json "$ANN_OUT"
echo "wrote $ANN_OUT"

go run ./cmd/wgbench -exp abl-sched -json "$SCHED_OUT"
echo "wrote $SCHED_OUT"
