#!/bin/sh
# Hot-path benchmark runner: measures the four headline benchmarks (plus
# the ablation baselines they are compared against) with -benchmem and
# -count=5, and distills the raw `go test` output into BENCH_hotpaths.json
# — one entry per benchmark with min/median ns/op, B/op and allocs/op.
# The JSON is the repo's perf trajectory baseline: run it before and after
# a perf PR and compare (benchstat on the raw output works too; it is kept
# alongside the JSON).
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_hotpaths.json)
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_hotpaths.json}"
RAW="${OUT%.json}.txt"
PATTERN='BenchmarkEndToEndEpoch|BenchmarkFig10Gather|BenchmarkSpMMNative|BenchmarkSpMMPyGStyle|BenchmarkAppendUnique$|BenchmarkAppendUniqueSort|BenchmarkAlg1Sampling'

go test -run '^$' -bench "$PATTERN" -benchmem -count=5 . | tee "$RAW"

awk -v raw="$RAW" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)        # strip -GOMAXPROCS suffix
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op")      bop[name]    = bop[name] " " $i
        if ($(i+1) == "allocs/op") allocs[name] = allocs[name] " " $i
    }
}
function stats(s, arr,   n, i, t) {
    n = split(s, arr, " ")
    # insertion sort (n == 5)
    for (i = 2; i <= n; i++)
        for (j = i; j > 1 && arr[j-1] + 0 > arr[j] + 0; j--) {
            t = arr[j]; arr[j] = arr[j-1]; arr[j-1] = t
        }
    return n
}
END {
    printf "{\n  \"source\": \"%s\",\n  \"benchmarks\": [\n", raw
    first = 1
    for (name in ns) order[++cnt] = name
    # stable output order: sort names
    for (i = 2; i <= cnt; i++)
        for (j = i; j > 1 && order[j-1] > order[j]; j--) {
            t = order[j]; order[j] = order[j-1]; order[j-1] = t
        }
    for (i = 1; i <= cnt; i++) {
        name = order[i]
        n = stats(ns[name], a)
        med_ns = a[int((n+1)/2)]; min_ns = a[1]
        n = stats(bop[name], b); med_b = (n ? b[int((n+1)/2)] : 0)
        n = stats(allocs[name], c); med_al = (n ? c[int((n+1)/2)] : 0)
        if (!first) printf ",\n"
        first = 0
        printf "    {\"name\": \"%s\", \"min_ns_per_op\": %s, \"median_ns_per_op\": %s, \"median_bytes_per_op\": %s, \"median_allocs_per_op\": %s}", \
            name, min_ns, med_ns, med_b, med_al
    }
    printf "\n  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT (raw output in $RAW)"
