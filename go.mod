module wholegraph

go 1.22
