// Command wggen generates and inspects the synthetic evaluation graphs:
// it prints size, degree distribution and split statistics, and can export
// the edge list and labels for external tooling.
//
// Usage:
//
//	wggen -dataset ogbn-products -scale 0.001
//	wggen -dataset Friendster -scale 1e-4 -edges-out edges.tsv -labels-out labels.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"wholegraph"
)

func main() {
	var (
		dsName    = flag.String("dataset", "ogbn-products", "dataset: ogbn-products, ogbn-papers100M, Friendster, UK_domain")
		scale     = flag.Float64("scale", 1e-3, "dataset scale factor")
		edgesOut  = flag.String("edges-out", "", "write the directed edge list as TSV")
		labelsOut = flag.String("labels-out", "", "write node labels (-1 = unlabeled) as TSV")
		saveOut   = flag.String("save", "", "write the full dataset in binary form (reload with wgtrain -load)")
	)
	flag.Parse()

	var spec wholegraph.DatasetSpec
	found := false
	for _, s := range []wholegraph.DatasetSpec{
		wholegraph.OgbnProducts, wholegraph.OgbnPapers100M,
		wholegraph.Friendster, wholegraph.UKDomain,
	} {
		if strings.EqualFold(s.Name, *dsName) {
			spec, found = s, true
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown dataset %q", *dsName))
	}

	ds, err := wholegraph.GenerateDataset(spec.Scaled(*scale))
	if err != nil {
		fatal(err)
	}
	g := ds.Graph
	fmt.Printf("dataset:        %s\n", ds.Spec.Name)
	fmt.Printf("nodes:          %d\n", g.N)
	fmt.Printf("stored edges:   %d (undirected pairs: %d)\n", g.NumEdges(), ds.NumEdgePairs())
	fmt.Printf("feature dim:    %d\n", ds.Spec.FeatDim)
	fmt.Printf("classes:        %d\n", ds.Spec.NumClasses)
	fmt.Printf("splits:         %d train / %d val / %d test\n", len(ds.Train), len(ds.Val), len(ds.Test))

	// Degree distribution summary.
	degs := make([]int64, g.N)
	for v := int64(0); v < g.N; v++ {
		degs[v] = g.Degree(v)
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
	pct := func(p float64) int64 { return degs[int(float64(len(degs)-1)*p)] }
	fmt.Printf("degree:         avg %.1f, p50 %d, p90 %d, p99 %d, max %d\n",
		float64(g.NumEdges())/float64(g.N), pct(0.5), pct(0.9), pct(0.99), degs[len(degs)-1])

	if *edgesOut != "" {
		if err := writeEdges(*edgesOut, ds); err != nil {
			fatal(err)
		}
		fmt.Printf("edges written:  %s\n", *edgesOut)
	}
	if *labelsOut != "" {
		if err := writeLabels(*labelsOut, ds); err != nil {
			fatal(err)
		}
		fmt.Printf("labels written: %s\n", *labelsOut)
	}
	if *saveOut != "" {
		if err := ds.SaveFile(*saveOut); err != nil {
			fatal(err)
		}
		fmt.Printf("dataset saved:  %s\n", *saveOut)
	}
}

func writeEdges(path string, ds *wholegraph.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	g := ds.Graph
	for v := int64(0); v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			fmt.Fprintf(w, "%d\t%d\n", v, u)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeLabels(path string, ds *wholegraph.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for v, lab := range ds.Labels {
		fmt.Fprintf(w, "%d\t%d\n", v, lab)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wggen:", err)
	os.Exit(1)
}
