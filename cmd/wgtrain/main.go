// Command wgtrain trains a GNN on a synthetic evaluation graph with the
// WholeGraph pipeline or one of the host-memory baselines, printing
// per-epoch virtual timings, phase breakdowns and accuracy.
//
// Usage:
//
//	wgtrain -dataset ogbn-products -scale 0.001 -model graphsage -epochs 10
//	wgtrain -framework dgl -model gat -batch 64 -fanouts 5,5 -hidden 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wholegraph"
)

func main() {
	var (
		dsName    = flag.String("dataset", "ogbn-products", "dataset: ogbn-products, ogbn-papers100M, Friendster, UK_domain")
		scale     = flag.Float64("scale", 1e-3, "dataset scale factor")
		model     = flag.String("model", "graphsage", "model: gcn, graphsage, gat, gin")
		framework = flag.String("framework", "wholegraph", "pipeline: wholegraph, dgl, pyg")
		nodes     = flag.Int("nodes", 1, "simulated DGX-A100 nodes")
		epochs    = flag.Int("epochs", 10, "training epochs")
		batch     = flag.Int("batch", 64, "mini-batch size per GPU")
		fanoutStr = flag.String("fanouts", "5,5", "per-layer sample counts")
		hidden    = flag.Int("hidden", 32, "hidden size")
		heads     = flag.Int("heads", 4, "GAT attention heads")
		lr        = flag.Float64("lr", 0.01, "Adam learning rate")
		dropout   = flag.Float64("dropout", 0.3, "dropout probability")
		seed      = flag.Int64("seed", 1, "random seed")
		evalEvery = flag.Int("eval-every", 1, "epochs between validation runs (0 = never)")
		loadPath  = flag.String("load", "", "load a dataset saved with wggen -save instead of generating")
		weighted  = flag.Bool("weighted", false, "attach synthetic edge weights (weighted aggregation)")
		pipeline  = flag.Bool("pipeline", false, "overlap batch building with training on each device's copy stream (WholeGraph only; identical math)")
		cacheRows = flag.Int("cache-rows", 0, "per-worker hot-node feature cache size in rows (WholeGraph only; 0 = no cache)")
		overlapG  = flag.Bool("overlap-grads", false, "overlap bucketed gradient AllReduce with backward on the copy stream (WholeGraph only; identical math)")
		captureG  = flag.Bool("capture-graph", false, "capture the training step per loader slot and replay it graph-launch style (WholeGraph only; identical math)")
		schedule  = flag.Bool("schedule", false, "replay captured steps through the whole-step DAG scheduler (implies -capture-graph; WholeGraph only; identical math)")
		pagedF    = flag.Bool("paged-features", false, "serve features from the out-of-core paged store (WholeGraph only; bit-identical with raw encoding)")
		featEnc   = flag.String("feat-encoding", "", "paged-store page encoding: raw, f16, q8 (lossy below raw)")
		featRows  = flag.Int("feat-page-rows", 0, "paged-store rows per page (0 = default)")
		featCache = flag.Int("feat-cache-mb", 0, "paged-store per-device BlockCache budget in MiB (0 = default)")
		pagedT    = flag.Bool("paged-topo", false, "serve the CSR column array from the paged topology store (WholeGraph only; bit-identical sampling)")
		topoEdges = flag.Int("topo-page-edges", 0, "topology-store column entries per page (0 = default)")
		topoCache = flag.Int("topo-cache-mb", 0, "topology-store per-device BlockCache budget in MiB (0 = default)")
		prefetchP = flag.Int("prefetch-pages", 0, "fault-prefetch up to this many predicted pages per paged store ahead of each batch (0 = off)")
		cachePol  = flag.String("cache-policy", "", "paged-store BlockCache policy: lru (default) or admit (frequency-aware admission)")
		outOfCore = flag.Bool("out-of-core", false, "generate the dataset without materializing features or topology (implies -paged-features and -paged-topo)")
		traceOut  = flag.String("trace-out", "", "write worker 0's device timeline as a Chrome trace JSON")
		fullInfer = flag.Bool("full-infer", false, "run full-graph layer-wise inference after training (WholeGraph only)")
		saveModel = flag.String("save-model", "", "write the trained model's parameters to a checkpoint file")
		loadModel = flag.String("load-model", "", "initialize the model from a checkpoint before training")
	)
	flag.Parse()

	fanouts, err := parseFanouts(*fanoutStr)
	if err != nil {
		fatal(err)
	}
	var ds *wholegraph.Dataset
	if *loadPath != "" {
		fmt.Printf("loading dataset from %s...\n", *loadPath)
		ds, err = wholegraph.LoadDataset(*loadPath)
		if err != nil {
			fatal(err)
		}
	} else {
		spec, ok := lookupSpec(*dsName)
		if !ok {
			fatal(fmt.Errorf("unknown dataset %q", *dsName))
		}
		spec = spec.Scaled(*scale)
		spec.Weighted = *weighted
		fmt.Printf("generating %s at scale %g...\n", *dsName, *scale)
		if *outOfCore {
			*pagedF = true
			*pagedT = true
			ds, err = wholegraph.GenerateDatasetOutOfCore(spec)
		} else {
			ds, err = wholegraph.GenerateDataset(spec)
		}
		if err != nil {
			fatal(err)
		}
	}
	if ds.Graph != nil {
		fmt.Printf("graph: %d nodes, %d stored edges, %d train / %d val / %d test\n",
			ds.Graph.N, ds.Graph.NumEdges(), len(ds.Train), len(ds.Val), len(ds.Test))
	} else {
		fmt.Printf("graph: %d nodes, %d stored edges (out-of-core edge source), %d train / %d val / %d test\n",
			ds.Spec.Nodes, ds.Topo.NumEdges(), len(ds.Train), len(ds.Val), len(ds.Test))
	}

	machine := wholegraph.NewDGXA100(*nodes)
	opts := wholegraph.TrainOptions{
		Arch: *model, Batch: *batch, Fanouts: fanouts, Hidden: *hidden,
		Heads: *heads, LR: *lr, Dropout: float32(*dropout), Seed: *seed,
		Pipeline: *pipeline, CacheRows: *cacheRows, OverlapGrads: *overlapG,
		CaptureGraph:  *captureG,
		Schedule:      *schedule,
		PagedFeatures: *pagedF, FeatEncoding: *featEnc,
		FeatPageRows: *featRows, FeatCacheMB: *featCache,
		PagedTopo: *pagedT, TopoPageEdges: *topoEdges, TopoCacheMB: *topoCache,
		PrefetchPages: *prefetchP, CachePolicy: *cachePol,
	}
	opts.Trace = *traceOut != ""
	var trainer *wholegraph.Trainer
	switch strings.ToLower(*framework) {
	case "wholegraph", "wg":
		trainer, err = wholegraph.NewTrainer(machine, ds, opts)
	case "dgl":
		trainer, err = wholegraph.NewBaselineTrainer(machine, ds, opts, wholegraph.DGL)
	case "pyg":
		trainer, err = wholegraph.NewBaselineTrainer(machine, ds, opts, wholegraph.PyG)
	default:
		err = fmt.Errorf("unknown framework %q", *framework)
	}
	if err != nil {
		fatal(err)
	}
	if *loadModel != "" {
		if err := trainer.Models[0].Params().LoadFile(*loadModel); err != nil {
			fatal(err)
		}
		fmt.Printf("model initialized from %s\n", *loadModel)
	}
	fmt.Printf("store setup: %.1f ms (virtual)\n\n", machine.MaxTime()*1e3)
	machine.Reset()

	fmt.Printf("%5s %10s %10s %10s %10s %10s %8s %8s %8s\n",
		"epoch", "time", "sample", "gather", "train", "crit", "loss", "acc", "val")
	for e := 1; e <= *epochs; e++ {
		st := trainer.RunEpoch()
		val := "-"
		if *evalEvery > 0 && e%*evalEvery == 0 {
			val = fmt.Sprintf("%.3f", trainer.Evaluate(ds.Val, 512))
		}
		fmt.Printf("%5d %10s %10s %10s %10s %10s %8.3f %8.3f %8s\n",
			st.Epoch, ms(st.EpochTime), ms(st.Timing.Sample), ms(st.Timing.Gather),
			ms(st.Timing.Train), ms(st.Timing.Crit), st.Loss, st.TrainAcc, val)
	}
	if len(ds.Test) > 0 {
		fmt.Printf("\ntest accuracy: %.3f\n", trainer.Evaluate(ds.Test, 1024))
	}
	if hits, misses := trainer.CacheStats(); hits+misses > 0 {
		fmt.Printf("feature cache: %d hits / %d misses (%.1f%% hit rate)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
	if fst := trainer.FeatStoreStats(); fst.Hits+fst.Misses > 0 {
		fmt.Printf("feature store (%s, %d rows/page, %s): %d page hits / %d misses (%.1f%% hit rate), %d evictions, %d prefetch hits, %d admission rejects, %.1f MiB resident of %.1f MiB budget\n",
			fst.Encoding, fst.PageRows, fst.Policy, fst.Hits, fst.Misses, 100*fst.HitRate(),
			fst.Evictions, fst.PrefetchHits, fst.AdmissionRejects,
			float64(fst.ResidentBytes)/(1<<20), float64(fst.CacheBytes)/(1<<20))
	}
	if gc := trainer.GraphStats(); gc.Captures+gc.Replays+gc.Fallbacks > 0 {
		fmt.Printf("step graphs: %d captures / %d replays (%d scheduled), %d invalidations, %d fallbacks\n",
			gc.Captures, gc.Replays, gc.Scheduled, gc.Invalidations, gc.Fallbacks)
	}
	if tst := trainer.TopoStoreStats(); tst.Hits+tst.Misses > 0 {
		fmt.Printf("topology store (%d edges/page, %s): %d page hits / %d misses (%.1f%% hit rate), %d evictions, %d prefetch hits, %d admission rejects, %.1f MiB resident of %.1f MiB budget\n",
			tst.PageEdges, tst.Policy, tst.Hits, tst.Misses, 100*tst.HitRate(),
			tst.Evictions, tst.PrefetchHits, tst.AdmissionRejects,
			float64(tst.ResidentBytes)/(1<<20), float64(tst.CacheBytes)/(1<<20))
	}
	if *fullInfer {
		if len(trainer.Stores) == 0 {
			fatal(fmt.Errorf("-full-infer requires -framework wholegraph"))
		}
		lw, ok := trainer.Models[0].(wholegraph.LayerwiseModel)
		if !ok {
			fatal(fmt.Errorf("model does not support layer-wise inference"))
		}
		t0 := machine.MaxTime()
		out, err := wholegraph.FullGraphInference(trainer.Stores[0], lw)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("full-graph inference: %d nodes embedded in %s (virtual)\n",
			out.R, ms(machine.MaxTime()-t0))
	}
	if *saveModel != "" {
		if err := trainer.Models[0].Params().SaveFile(*saveModel); err != nil {
			fatal(err)
		}
		fmt.Printf("model checkpoint written: %s\n", *saveModel)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := wholegraph.WriteChromeTrace(f, machine.Devs); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("device timeline written: %s (open in chrome://tracing)\n", *traceOut)
	}
}

func lookupSpec(name string) (wholegraph.DatasetSpec, bool) {
	for _, s := range []wholegraph.DatasetSpec{
		wholegraph.OgbnProducts, wholegraph.OgbnPapers100M,
		wholegraph.Friendster, wholegraph.UKDomain,
	} {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return wholegraph.DatasetSpec{}, false
}

func parseFanouts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad fanout %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func ms(s float64) string { return fmt.Sprintf("%.2fms", s*1e3) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wgtrain:", err)
	os.Exit(1)
}
