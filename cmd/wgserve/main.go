// Command wgserve runs the online inference serving simulation: a seeded
// open-loop Poisson request stream against a multi-replica deployment with
// dynamic batching, admission control and SLO accounting, all in virtual
// time.
//
// Usage:
//
//	wgserve -rate 50000 -max-batch 16 -slo 0.01
//	wgserve -replicas 8 -cache-rows 500 -skew 1.3 -policy cache
//	wgserve -max-batch 1 -json single.json   # unbatched baseline
//	wgserve -workload retrieval -topk 10 -ef-search 64   # ANN top-K serving
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wholegraph"
)

func main() {
	var (
		dsName    = flag.String("dataset", "ogbn-products", "dataset: ogbn-products, ogbn-papers100M, Friendster, UK_domain")
		scale     = flag.Float64("scale", 1e-3, "dataset scale factor")
		model     = flag.String("model", "graphsage", "model: gcn, graphsage, gat")
		hidden    = flag.Int("hidden", 32, "hidden size")
		fanoutStr = flag.String("fanouts", "5,5", "per-layer sample counts")
		replicas  = flag.Int("replicas", 4, "serving replicas (GPUs of one node)")
		rate      = flag.Float64("rate", 50000, "mean Poisson arrival rate, requests per virtual second")
		requests  = flag.Int("requests", 4000, "total requests to generate")
		maxBatch  = flag.Int("max-batch", 16, "dynamic batching cap (1 = no batching)")
		maxDelay  = flag.Float64("max-delay", 0.5e-3, "longest a queued request waits for companions, virtual seconds")
		slo       = flag.Float64("slo", 10e-3, "latency SLO reported against, virtual seconds")
		deadline  = flag.Float64("deadline", 0, "drop requests not launched within this, virtual seconds (0 = never)")
		queueCap  = flag.Int("queue-cap", 0, "per-replica queue bound; arrivals beyond it are shed (0 = 8*max-batch)")
		cacheRows = flag.Int("cache-rows", 0, "per-replica hot-node feature cache size in rows (0 = no cache)")
		skew      = flag.Float64("skew", 0, "Zipf popularity skew over the degree ranking (>1; 0 = uniform)")
		policy    = flag.String("policy", "cache", "routing policy: cache, owner, rr")
		workload  = flag.String("workload", "inference", "workload: inference (node classification) or retrieval (ANN top-K over embeddings)")
		topk      = flag.Int("topk", 10, "retrieval: neighbors returned per query")
		efSearch  = flag.Int("ef-search", 64, "retrieval: HNSW search beam width")
		seed      = flag.Int64("seed", 1, "random seed (fixes arrivals, nodes and sampling)")
		jsonPath  = flag.String("json", "", "write the aggregated result as JSON to this path")
		trace     = flag.Bool("trace", false, "print the per-request trace")
		pagedF    = flag.Bool("paged-features", false, "serve features from the out-of-core paged store (bit-identical with raw encoding)")
		featEnc   = flag.String("feat-encoding", "", "paged-store page encoding: raw, f16, q8 (lossy below raw)")
		featRows  = flag.Int("feat-page-rows", 0, "paged-store rows per page (0 = default)")
		featCache = flag.Int("feat-cache-mb", 0, "paged-store per-device BlockCache budget in MiB (0 = default)")
		cachePol  = flag.String("cache-policy", "", "paged-store BlockCache policy: lru (default) or admit (frequency-aware admission)")
	)
	flag.Parse()

	fanouts, err := parseFanouts(*fanoutStr)
	if err != nil {
		fatal(err)
	}
	spec, ok := lookupSpec(*dsName)
	if !ok {
		fatal(fmt.Errorf("unknown dataset %q", *dsName))
	}
	spec = spec.Scaled(*scale)
	fmt.Printf("generating %s at scale %g...\n", *dsName, *scale)
	ds, err := wholegraph.GenerateDataset(spec)
	if err != nil {
		fatal(err)
	}

	cfg := wholegraph.DGXA100Config(1)
	cfg.GPUsPerNode = *replicas
	machine := wholegraph.NewMachine(cfg)
	m := wholegraph.NewModel(*model, wholegraph.ModelConfig{
		InDim: spec.FeatDim, Hidden: *hidden, Classes: spec.NumClasses,
		Layers: len(fanouts), Heads: 4, Backend: wholegraph.BackendNative,
		Seed: *seed,
	})
	lw, ok := m.(wholegraph.LayerwiseModel)
	if !ok {
		fatal(fmt.Errorf("model %q does not support layer-wise serving", *model))
	}
	sopts := wholegraph.ServeOptions{
		Rate: *rate, Requests: *requests, MaxBatch: *maxBatch,
		MaxDelay: *maxDelay, SLO: *slo, Deadline: *deadline,
		QueueCap: *queueCap, CacheRows: *cacheRows, Fanouts: fanouts,
		Skew: *skew, Policy: wholegraph.ServePolicy(*policy), Seed: *seed,
		PagedFeatures: *pagedF, FeatEncoding: *featEnc,
		FeatPageRows: *featRows, FeatCacheMB: *featCache, CachePolicy: *cachePol,
	}
	var srv *wholegraph.Server
	switch *workload {
	case wholegraph.WorkloadInference:
		srv, err = wholegraph.NewServer(machine, 0, ds, lw, sopts)
	case wholegraph.WorkloadRetrieval:
		// Retrieval serves top-K neighbors out of an HNSW index over the
		// model's final-layer embeddings: embed the whole graph layer-wise,
		// index the rows, then serve. Embedding and index construction are
		// part of the reported setup time.
		store, serr := wholegraph.NewStore(machine, 0, ds)
		if serr != nil {
			fatal(serr)
		}
		fmt.Printf("embedding %d nodes and building the HNSW index...\n", spec.Nodes)
		emb, eerr := wholegraph.FullGraphEmbeddings(store, lw)
		if eerr != nil {
			fatal(eerr)
		}
		ix, berr := wholegraph.BuildANNIndex(store.Comm, emb, wholegraph.ANNOptions{Seed: *seed})
		if berr != nil {
			fatal(berr)
		}
		sopts.TopK = *topk
		sopts.EfSearch = *efSearch
		srv, err = wholegraph.NewRetrievalServer(ix, sopts)
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("deployment: %d replicas, setup %.1f ms (virtual)\n",
		srv.Replicas(), machine.MaxTime()*1e3)
	machine.Reset()

	res, err := srv.Run()
	if err != nil {
		fatal(err)
	}

	if *trace {
		fmt.Printf("\n%6s %8s %10s %3s %8s %10s %6s\n",
			"req", "node", "arrival", "rep", "outcome", "latency", "batch")
		for _, q := range res.Trace {
			lat := "-"
			if q.Outcome == wholegraph.Served {
				lat = fmt.Sprintf("%.3fms", q.Latency()*1e3)
			}
			fmt.Printf("%6d %8d %9.3fms %3d %8s %10s %6d\n",
				q.ID, q.Node, q.Arrival*1e3, q.Replica, q.Outcome, lat, q.BatchSize)
		}
	}

	fmt.Printf("\noffered %d: served %d, shed %d, timed out %d (%d batches, mean size %.2f)\n",
		res.Offered, res.Served, res.Shed, res.TimedOut, res.Batches, res.MeanBatch)
	fmt.Printf("throughput: %.0f req/s over %.2f ms (goodput %.0f req/s)\n",
		res.Throughput, res.Duration*1e3, res.Goodput)
	fmt.Printf("latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, mean %.3f ms, max %.3f ms\n",
		res.P50*1e3, res.P95*1e3, res.P99*1e3, res.MeanLatency*1e3, res.MaxLatency*1e3)
	fmt.Printf("SLO %.1f ms: %.1f%% of served within\n", res.SLO*1e3, 100*res.SLOAttainment)
	if res.TopK > 0 {
		fmt.Printf("recall@%d: %.3f mean over served (ef-search %d)\n", res.TopK, res.Recall, res.EfSearch)
	}
	for _, st := range res.PerReplica {
		line := fmt.Sprintf("  replica %d: %d reqs (%d served, %d shed, %d t/out), %d batches, busy %.2f/%.2f ms compute/copy",
			st.Replica, st.Requests, st.Served, st.Shed, st.TimedOut,
			st.Batches, st.BusySeconds*1e3, st.CopyBusySeconds*1e3)
		if *cacheRows > 0 {
			line += fmt.Sprintf(", cache hit %.0f%%", 100*st.CacheHitRate)
		}
		fmt.Println(line)
	}

	if fst := srv.FeatStoreStats(); fst.Hits+fst.Misses > 0 {
		fmt.Printf("feature store (%s, %d rows/page, %s): %d page hits / %d misses (%.1f%% hit rate), %d evictions, %d prefetch hits, %d admission rejects, %.1f MiB resident of %.1f MiB budget\n",
			fst.Encoding, fst.PageRows, fst.Policy, fst.Hits, fst.Misses, 100*fst.HitRate(),
			fst.Evictions, fst.PrefetchHits, fst.AdmissionRejects,
			float64(fst.ResidentBytes)/(1<<20), float64(fst.CacheBytes)/(1<<20))
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("result written: %s\n", *jsonPath)
	}
}

func lookupSpec(name string) (wholegraph.DatasetSpec, bool) {
	for _, s := range []wholegraph.DatasetSpec{
		wholegraph.OgbnProducts, wholegraph.OgbnPapers100M,
		wholegraph.Friendster, wholegraph.UKDomain,
	} {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return wholegraph.DatasetSpec{}, false
}

func parseFanouts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad fanout %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wgserve:", err)
	os.Exit(1)
}
