// Command wgbench regenerates the WholeGraph paper's evaluation: every
// table (I-V) and figure (7-13) of §IV, plus the shared-memory setup
// microbenchmark, on the simulated DGX-A100.
//
// Usage:
//
//	wgbench -exp all                 # everything, default scale 1/1000
//	wgbench -exp table5 -scale 0.002 # one experiment at a custom scale
//	wgbench -exp fig8,fig10 -quick   # fast pass with reduced models
//	wgbench -exp table3 -parallel    # fan independent cells across cores
//	wgbench -exp all -json out.json  # machine-readable results
//	wgbench -exp fig9 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	wgbench -exp table5 -pipeline -cache-rows 500  # overlapped loaders + feature cache
//	wgbench -exp abl-overlap-grads -overlap-grads  # bucketed gradient/backward overlap
//
// Reported times are virtual seconds from the machine simulation; see
// EXPERIMENTS.md for the paper-vs-measured comparison and the scaling
// substitutions. -parallel changes only wall-clock time: printed rows and
// virtual seconds are identical to a serial run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"wholegraph/internal/bench"
)

var experiments = []struct {
	name string
	desc string
	run  func(bench.Config) (any, error)
}{
	{"table1", "UM vs GPUDirect P2P access latency", wrap(bench.Table1)},
	{"table2", "evaluation datasets", wrap(bench.Table2)},
	{"table3", "accuracy parity across frameworks", wrap(bench.Table3)},
	{"table4", "memory usage for ogbn-papers100M", wrap(bench.Table4)},
	{"table5", "epoch time and speedups", wrap(bench.Table5)},
	{"fig7", "validation accuracy curves (DGL vs WholeGraph)", wrap(bench.Fig7)},
	{"fig8", "random gather bandwidth vs segment size", wrap(bench.Fig8)},
	{"fig9", "epoch time breakdown", wrap(bench.Fig9)},
	{"fig10", "shared-memory vs NCCL-based gather", wrap(bench.Fig10)},
	{"fig11", "native vs third-party GNN layers", wrap(bench.Fig11)},
	{"fig12", "GPU utilization over time", wrap(bench.Fig12)},
	{"fig13", "multi-node scaling", wrap(bench.Fig13)},
	{"setup", "shared-memory setup cost", wrap(bench.Setup)},
	{"abl-storage", "ablation: P2P vs UM vs pinned-host feature storage", wrap(bench.AblationStorage)},
	{"abl-unique", "ablation: hash-table vs sort AppendUnique", wrap(bench.AblationUnique)},
	{"abl-dedup", "ablation: gather with vs without deduplication", wrap(bench.AblationDedup)},
	{"infer", "offline inference: sampled vs full-graph layer-wise", wrap(bench.Inference)},
	{"abl-cache", "ablation: hot-node feature cache sizes", wrap(bench.AblationCache)},
	{"abl-hw", "ablation: NVSwitch vs PCIe-only fabric", wrap(bench.AblationHardware)},
	{"abl-part", "ablation: hash vs range vs community node placement", wrap(bench.AblationPartition)},
	{"abl-pipeline", "ablation: cross-iteration batch prefetch vs sequential", wrap(bench.AblationPipeline)},
	{"abl-overlap-grads", "ablation: bucketed gradient AllReduce overlapped with backward", wrap(bench.AblationOverlapGrads)},
	{"abl-graph", "ablation: step capture/replay vs eager per-kernel dispatch", wrap(bench.AblationGraph)},
	{"abl-sched", "ablation: whole-step DAG scheduling vs plain capture/replay", wrap(bench.AblationSched)},
	{"abl-featstore", "ablation: flat slab vs paged+encoded out-of-core feature store", wrap(bench.AblationFeatstore)},
	{"abl-oocgraph", "ablation: in-RAM CSR vs paged topology with prefetch and admission", wrap(bench.AblationOOCGraph)},
	{"featstore-full", "out-of-core papers100M: paged features and topology at full scale", wrap(bench.FeatstoreFull)},
	{"analytics", "PageRank and connected components over the shared store", wrap(bench.Analytics)},
	{"graphclass", "graph classification: GIN on topology motifs", wrap(bench.GraphClass)},
	{"serving", "online serving: dynamic batching vs batch=1", wrap(bench.Serving)},
	{"abl-ann", "ANN retrieval: HNSW recall-vs-latency sweep vs brute-force, plus serving", wrap(bench.AblationANN)},
}

func wrap[T any](f func(bench.Config) (T, error)) func(bench.Config) (any, error) {
	return func(cfg bench.Config) (any, error) {
		return f(cfg)
	}
}

// jsonReport is the -json output: run metadata plus one entry per executed
// experiment with its typed result rows (virtual seconds live inside them)
// and the host wall-clock the experiment took.
type jsonReport struct {
	Scale       float64                   `json:"scale"`
	Quick       bool                      `json:"quick"`
	Epochs      int                       `json:"epochs"`
	Seed        int64                     `json:"seed"`
	Parallel    bool                      `json:"parallel"`
	Pipeline    bool                      `json:"pipeline"`
	CacheRows   int                       `json:"cache_rows"`
	OverlapG    bool                      `json:"overlap_grads"`
	CaptureG    bool                      `json:"capture_graph"`
	Schedule    bool                      `json:"schedule"`
	PagedFeat   bool                      `json:"paged_features"`
	FeatEnc     string                    `json:"feat_encoding,omitempty"`
	PagedTopo   bool                      `json:"paged_topo"`
	PrefetchPgs int                       `json:"prefetch_pages,omitempty"`
	CachePolicy string                    `json:"cache_policy,omitempty"`
	CacheHits   int64                     `json:"cache_hits"`
	CacheMisses int64                     `json:"cache_misses"`
	CacheHit    float64                   `json:"cache_hit_rate"`
	FeatStore   *jsonStore                `json:"featstore,omitempty"`
	TopoStore   *jsonStore                `json:"topostore,omitempty"`
	Graph       *bench.GraphCounterTotals `json:"graph_counters,omitempty"`
	NVLinkTxGB  float64                   `json:"nvlink_tx_gb"`
	IBTxGB      float64                   `json:"ib_tx_gb"`
	CommSeconds float64                   `json:"comm_seconds"`
	GOMAXPROCS  int                       `json:"gomaxprocs"`
	StartedAt   time.Time                 `json:"started_at"`
	WallSeconds float64                   `json:"wall_seconds"`
	Experiments []jsonExperiment          `json:"experiments"`
}

// jsonStore is the aggregate BlockCache accounting for one paged-store kind
// (features or topology) across every trainer the run built.
type jsonStore struct {
	bench.StoreCounters
	HitRate float64 `json:"hit_rate"`
}

type jsonExperiment struct {
	Name        string  `json:"name"`
	Desc        string  `json:"desc"`
	WallSeconds float64 `json:"wall_seconds"`
	Result      any     `json:"result"`
}

func main() {
	var (
		exp        = flag.String("exp", "all", "comma-separated experiments (all, "+names()+")")
		scale      = flag.Float64("scale", 1e-3, "dataset scale factor vs the paper's full-size graphs")
		quick      = flag.Bool("quick", false, "reduced model sizes and iteration counts")
		epochs     = flag.Int("epochs", 0, "epochs for accuracy experiments (0 = default)")
		seed       = flag.Int64("seed", 1, "random seed")
		parallel   = flag.Bool("parallel", false, "run independent experiment cells on parallel goroutines (identical output, less wall-clock)")
		pipeline   = flag.Bool("pipeline", false, "overlap batch building with training on each device's copy stream (identical math, shorter virtual epochs)")
		cacheRows  = flag.Int("cache-rows", 0, "per-worker hot-node feature cache size in rows (0 = no cache)")
		overlapG   = flag.Bool("overlap-grads", false, "overlap bucketed gradient AllReduce with backward on the copy stream (identical math, different virtual epochs)")
		captureG   = flag.Bool("capture-graph", false, "capture the training step once per loader slot and replay it graph-launch style (identical math, shorter virtual epochs)")
		schedule   = flag.Bool("schedule", false, "replay captured steps through the whole-step DAG scheduler (implies -capture-graph; identical math, shorter virtual epochs)")
		pagedF     = flag.Bool("paged-features", false, "serve features from the out-of-core paged store (bit-identical math with raw encoding)")
		featEnc    = flag.String("feat-encoding", "", "paged-store page encoding: raw, f16, q8 (lossy below raw)")
		featPgRows = flag.Int("feat-page-rows", 0, "paged-store rows per page (0 = default)")
		featCache  = flag.Int("feat-cache-mb", 0, "paged-store per-device BlockCache budget in MiB (0 = default)")
		pagedT     = flag.Bool("paged-topo", false, "serve the CSR column array from the paged topology store (bit-identical sampling)")
		topoPgEdge = flag.Int("topo-page-edges", 0, "topology-store column entries per page (0 = default)")
		topoCache  = flag.Int("topo-cache-mb", 0, "topology-store per-device BlockCache budget in MiB (0 = default)")
		prefetchPg = flag.Int("prefetch-pages", 0, "fault-prefetch up to this many predicted pages per paged store ahead of each batch (0 = off)")
		cachePol   = flag.String("cache-policy", "", "paged-store BlockCache policy: lru (default) or admit (frequency-aware admission)")
		jsonPath   = flag.String("json", "", "also write machine-readable results to this path")
		list       = flag.Bool("list", false, "list experiments and exit")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this path")
		memProf    = flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this path")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}

	cfg := bench.Config{
		Scale: *scale, Quick: *quick, Epochs: *epochs, Seed: *seed,
		Parallel: *parallel, Pipeline: *pipeline, CacheRows: *cacheRows,
		OverlapGrads: *overlapG, CaptureGraph: *captureG, Schedule: *schedule,
		PagedFeatures: *pagedF, FeatEncoding: *featEnc,
		FeatPageRows: *featPgRows, FeatCacheMB: *featCache,
		PagedTopo: *pagedT, TopoPageEdges: *topoPgEdge, TopoCacheMB: *topoCache,
		PrefetchPages: *prefetchPg, CachePolicy: *cachePol,
		W: os.Stdout,
	}
	want := map[string]bool{}
	for _, n := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(n)] = true
	}
	report := jsonReport{
		Scale: *scale, Quick: *quick, Epochs: *epochs, Seed: *seed,
		Parallel: *parallel, Pipeline: *pipeline, CacheRows: *cacheRows,
		OverlapG: *overlapG, CaptureG: *captureG, Schedule: *schedule,
		PagedFeat: *pagedF, FeatEnc: *featEnc,
		PagedTopo: *pagedT, PrefetchPgs: *prefetchPg, CachePolicy: *cachePol,
		GOMAXPROCS: runtime.GOMAXPROCS(0), StartedAt: time.Now(),
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wgbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wgbench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wgbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "wgbench: writing heap profile: %v\n", err)
				os.Exit(1)
			}
		}()
	}
	start := time.Now()
	ran := 0
	for _, e := range experiments {
		if !want["all"] && !want[e.name] {
			continue
		}
		t0 := time.Now()
		res, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wgbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		wall := time.Since(t0)
		fmt.Printf("[%s done in %v]\n\n", e.name, wall.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, jsonExperiment{
			Name: e.name, Desc: e.desc, WallSeconds: wall.Seconds(), Result: res,
		})
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "wgbench: no experiment matched %q (use -list)\n", *exp)
		os.Exit(2)
	}
	if hits, misses := bench.CacheCounters(); hits+misses > 0 {
		report.CacheHits, report.CacheMisses = hits, misses
		report.CacheHit = float64(hits) / float64(hits+misses)
		fmt.Printf("feature cache: %d hits / %d misses (%.1f%% hit rate)\n",
			hits, misses, 100*report.CacheHit)
	}
	if c := bench.FeatStoreCounters(); c.Hits+c.Misses > 0 {
		report.FeatStore = &jsonStore{StoreCounters: c, HitRate: c.HitRate()}
		fmt.Printf("feature store: %d page hits / %d misses (%.1f%% hit rate), %d evictions, %d prefetch hits, %d admission rejects, %.1f MiB resident\n",
			c.Hits, c.Misses, 100*c.HitRate(), c.Evictions,
			c.PrefetchHits, c.AdmissionRejects, float64(c.ResidentBytes)/(1<<20))
	}
	if c := bench.TopoStoreCounters(); c.Hits+c.Misses > 0 {
		report.TopoStore = &jsonStore{StoreCounters: c, HitRate: c.HitRate()}
		fmt.Printf("topology store: %d page hits / %d misses (%.1f%% hit rate), %d evictions, %d prefetch hits, %d admission rejects, %.1f MiB resident\n",
			c.Hits, c.Misses, 100*c.HitRate(), c.Evictions,
			c.PrefetchHits, c.AdmissionRejects, float64(c.ResidentBytes)/(1<<20))
	}
	if g := bench.GraphCountersTotal(); g.Captures+g.Replays+g.Fallbacks > 0 {
		report.Graph = &g
		fmt.Printf("step graphs: %d captures / %d replays (%d scheduled), %d invalidations, %d fallbacks\n",
			g.Captures, g.Replays, g.Scheduled, g.Invalidations, g.Fallbacks)
	}
	if nvlink, ib, comm := bench.CommCounters(); comm > 0 {
		report.NVLinkTxGB = nvlink / 1e9
		report.IBTxGB = ib / 1e9
		report.CommSeconds = comm
		fmt.Printf("collectives: %.3f GB NVLink, %.3f GB IB, %s stream time\n",
			nvlink/1e9, ib/1e9, (time.Duration(comm * float64(time.Second))).Round(time.Microsecond))
	}
	if *jsonPath != "" {
		report.WallSeconds = time.Since(start).Seconds()
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "wgbench: encoding -json report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "wgbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d experiment results to %s\n", ran, *jsonPath)
	}
}

func names() string {
	var n []string
	for _, e := range experiments {
		n = append(n, e.name)
	}
	return strings.Join(n, ", ")
}
