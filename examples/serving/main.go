// Online inference serving end to end: train a small GraphSAGE, deploy it
// onto the GPUs of one simulated node, and serve the same open-loop
// Poisson request stream twice — once unbatched (every request runs alone)
// and once with dynamic batching — comparing throughput, tail latency and
// drops under identical load. Everything is deterministic virtual time.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"wholegraph"
)

func main() {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.001))
	if err != nil {
		log.Fatal(err)
	}

	// Train a model to serve.
	trainMachine := wholegraph.NewDGXA100(1)
	trainer, err := wholegraph.NewTrainer(trainMachine, ds, wholegraph.TrainOptions{
		Arch:    "graphsage",
		Batch:   64,
		Fanouts: []int{5, 5},
		Hidden:  32,
		LR:      0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training...")
	for e := 0; e < 5; e++ {
		trainer.RunEpoch()
	}
	model := trainer.Models[0].(wholegraph.LayerwiseModel)

	// Deploy on a 2-GPU node and serve the same stream both ways. The rate
	// is set above the unbatched capacity, so batch=1 visibly overloads.
	opts := wholegraph.ServeOptions{
		Rate:     80000, // requests per virtual second, open loop
		Requests: 1500,
		MaxDelay: 0.5e-3, // batches launch after 0.5 ms even if not full
		SLO:      10e-3,  // report latency against a 10 ms target
		Deadline: 10e-3,  // drop what cannot launch within it
		QueueCap: 128,    // shed arrivals beyond this per replica
		Skew:     1.3,    // Zipf popularity: hot nodes repeat
		Fanouts:  []int{5, 5},
		Seed:     1,
	}
	fmt.Printf("\n%-10s %8s %6s %6s %10s %10s %10s %8s\n",
		"mode", "served", "shed", "t/out", "thr req/s", "p50", "p99", "SLO %")
	for _, mode := range []struct {
		name     string
		maxBatch int
	}{
		{"batch=1", 1},
		{"batched", 16},
	} {
		cfg := wholegraph.DGXA100Config(1)
		cfg.GPUsPerNode = 2
		machine := wholegraph.NewMachine(cfg)
		o := opts
		o.MaxBatch = mode.maxBatch
		srv, err := wholegraph.NewServer(machine, 0, ds, model, o)
		if err != nil {
			log.Fatal(err)
		}
		machine.Reset() // store + replica setup is one-time, not steady state
		res, err := srv.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8d %6d %6d %10.0f %9.2fms %9.2fms %7.1f%%\n",
			mode.name, res.Served, res.Shed, res.TimedOut, res.Throughput,
			res.P50*1e3, res.P99*1e3, 100*res.SLOAttainment)
	}
	fmt.Println("\nsame stream, same model: batching amortizes kernel launches and")
	fmt.Println("coalesces duplicate hot nodes, so it serves everything the")
	fmt.Println("unbatched server sheds — at a lower tail latency.")
}
