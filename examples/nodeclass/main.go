// Node classification on a product co-purchasing network — the paper's
// motivating recommender-system workload (ogbn-products).
//
// The example trains the same GCN with the WholeGraph pipeline and with the
// DGL-like host-memory baseline, showing the paper's two headline results
// side by side: the epoch-time speedup from moving sampling and feature
// gathering onto the GPUs, and the accuracy parity between the pipelines
// (they share the training math; only the data path differs).
//
//	go run ./examples/nodeclass
package main

import (
	"fmt"
	"log"

	"wholegraph"
)

const epochs = 12

func main() {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.002))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ogbn-products (scaled): %d products, %d co-purchase edges, %d classes\n\n",
		ds.Graph.N, ds.NumEdgePairs(), ds.Spec.NumClasses)

	opts := wholegraph.TrainOptions{
		Arch:    "gcn",
		Batch:   64,
		Fanouts: []int{8, 8},
		Hidden:  32,
		LR:      0.01,
		Dropout: 0.3,
	}

	type result struct {
		name      string
		epochTime float64
		valAcc    float64
	}
	var results []result

	run := func(name string, mk func(*wholegraph.Machine) (*wholegraph.Trainer, error)) {
		machine := wholegraph.NewDGXA100(1)
		tr, err := mk(machine)
		if err != nil {
			log.Fatal(err)
		}
		machine.Reset()
		var sumEpoch float64
		for e := 0; e < epochs; e++ {
			st := tr.RunEpoch()
			sumEpoch += st.EpochTime
		}
		results = append(results, result{
			name:      name,
			epochTime: sumEpoch / epochs,
			valAcc:    tr.Evaluate(ds.Val, 0),
		})
	}

	run("WholeGraph", func(m *wholegraph.Machine) (*wholegraph.Trainer, error) {
		return wholegraph.NewTrainer(m, ds, opts)
	})
	run("DGL (host memory)", func(m *wholegraph.Machine) (*wholegraph.Trainer, error) {
		return wholegraph.NewBaselineTrainer(m, ds, opts, wholegraph.DGL)
	})

	fmt.Printf("%-20s %16s %12s\n", "pipeline", "avg epoch (ms)", "val acc")
	for _, r := range results {
		fmt.Printf("%-20s %16.2f %12.3f\n", r.name, r.epochTime*1e3, r.valAcc)
	}
	fmt.Printf("\nspeedup: %.2fx — same model, same samples, different data path\n",
		results[1].epochTime/results[0].epochTime)
}
