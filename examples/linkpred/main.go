// Link prediction over the multi-GPU shared-memory store — one of the
// paper's three named GNN tasks (§I). A GraphSAGE encoder is trained
// end-to-end on the link objective: each iteration samples existing edges
// as positives and random non-adjacent pairs as negatives, encodes the
// endpoints through the WholeGraph sampling/gather pipeline, scores pairs
// with the dot product of their embeddings, and backpropagates binary
// cross-entropy through the score head into the encoder.
//
//	go run ./examples/linkpred
package main

import (
	"fmt"
	"log"

	"wholegraph"
)

func main() {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.002))
	if err != nil {
		log.Fatal(err)
	}
	machine := wholegraph.NewDGXA100(1)
	store, err := wholegraph.NewStore(machine, 0, ds)
	if err != nil {
		log.Fatal(err)
	}
	machine.Reset()

	tr, err := wholegraph.NewLinkPredictor(store, machine.Devs[0], wholegraph.LinkPredOptions{
		EdgeBatch: 128,
		Fanouts:   []int{5, 5},
		Dim:       32,
		LR:        0.01,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("link prediction on %s: %d nodes, %d edge pairs\n\n",
		ds.Spec.Name, ds.Graph.N, ds.NumEdgePairs())
	fmt.Printf("%6s %10s %8s\n", "iter", "BCE loss", "AUC")
	fmt.Printf("%6d %10s %8.3f\n", 0, "-", tr.EvalAUC(512))
	for it := 1; it <= 80; it++ {
		loss := tr.TrainStep()
		if it%20 == 0 {
			fmt.Printf("%6d %10.4f %8.3f\n", it, loss, tr.EvalAUC(512))
		}
	}
	fmt.Printf("\ntotal virtual time: %.2f ms on one GPU of the shared store\n",
		machine.MaxTime()*1e3)
}
