// Multi-node scaling (paper §III-D, Figure 13): every machine node holds a
// full replica of the graph in its GPUs' shared memory, training nodes are
// sharded over all workers, and gradients synchronize through a
// hierarchical NVLink + InfiniBand AllReduce. Epoch time should fall
// near-linearly with the node count.
//
//	go run ./examples/multinode
package main

import (
	"fmt"
	"log"

	"wholegraph"
)

func main() {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnPapers100M.Scaled(0.001))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ogbn-papers100M (scaled): %d papers, %d citation edges, %d training nodes\n\n",
		ds.Graph.N, ds.NumEdgePairs(), len(ds.Train))

	fmt.Printf("%6s %14s %10s %12s\n", "nodes", "epoch (ms)", "speedup", "efficiency")
	var base float64
	for _, nodes := range []int{1, 2, 4, 8} {
		machine := wholegraph.NewDGXA100(nodes)
		trainer, err := wholegraph.NewTrainer(machine, ds, wholegraph.TrainOptions{
			Arch:    "graphsage",
			Batch:   8, // small batches => many iterations, as at paper scale
			Fanouts: []int{5, 5, 5},
			Hidden:  32,
			// Measure a few iterations and extrapolate the full epoch.
			MaxItersPerEpoch: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		machine.Reset()
		st := trainer.RunEpoch()
		if nodes == 1 {
			base = st.EpochTime
		}
		speedup := base / st.EpochTime
		fmt.Printf("%6d %14.2f %9.2fx %11.0f%%\n",
			nodes, st.EpochTime*1e3, speedup, 100*speedup/float64(nodes))
	}
	fmt.Println("\none graph replica per node; only the gradient AllReduce crosses InfiniBand")
}
