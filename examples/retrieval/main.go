// Embedding retrieval end to end: train a small GraphSAGE, embed every
// node with full-graph layer-wise inference, build a deterministic HNSW
// index over the embedding table (sharded across the node's GPUs like any
// other shared allocation), and serve top-K nearest-neighbor queries
// through the dynamic batcher — recall@K against the exact brute-force
// oracle reported next to tail latency, all in virtual time.
//
//	go run ./examples/retrieval
package main

import (
	"fmt"
	"log"

	"wholegraph"
)

func main() {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.002))
	if err != nil {
		log.Fatal(err)
	}

	// Train the encoder whose embeddings we will index.
	trainMachine := wholegraph.NewDGXA100(1)
	trainer, err := wholegraph.NewTrainer(trainMachine, ds, wholegraph.TrainOptions{
		Arch:    "graphsage",
		Batch:   64,
		Fanouts: []int{5, 5},
		Hidden:  32,
		LR:      0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training...")
	for e := 0; e < 5; e++ {
		trainer.RunEpoch()
	}
	model := trainer.Models[0].(wholegraph.LayerwiseModel)

	// Embed the whole graph and index the table on a 4-GPU deployment.
	cfg := wholegraph.DGXA100Config(1)
	cfg.GPUsPerNode = 4
	machine := wholegraph.NewMachine(cfg)
	store, err := wholegraph.NewStore(machine, 0, ds)
	if err != nil {
		log.Fatal(err)
	}
	emb, err := wholegraph.FullGraphEmbeddings(store, model)
	if err != nil {
		log.Fatal(err)
	}
	index, err := wholegraph.BuildANNIndex(store.Comm, emb, wholegraph.ANNOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d embeddings (dim %d), setup %.1f ms virtual\n",
		index.N(), index.Dim(), machine.MaxTime()*1e3)

	// One query by hand: HNSW's answer vs the exact scan.
	machine.Reset()
	const probe = 42
	approx := index.Search(machine.Devs[0], index.Vector(probe), 5, 64)
	exact := index.Exact(index.Vector(probe), 5)
	fmt.Printf("\nnode %d nearest neighbors (HNSW ef=64 vs exact):\n", probe)
	for i := range approx {
		fmt.Printf("  #%d  hnsw: node %-6d d=%.4f   exact: node %-6d d=%.4f\n",
			i+1, approx[i].ID, approx[i].Dist, exact[i].ID, exact[i].Dist)
	}

	// Serve a skewed open-loop stream of top-10 queries.
	srv, err := wholegraph.NewRetrievalServer(index, wholegraph.ServeOptions{
		Rate:     150000,
		Requests: 1200,
		MaxBatch: 16,
		MaxDelay: 0.3e-3,
		SLO:      1e-3,
		Skew:     1.3,
		TopK:     10,
		EfSearch: 64,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	machine.Reset()
	res, err := srv.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserved %d/%d requests: %.0f req/s, mean batch %.1f\n",
		res.Served, res.Offered, res.Throughput, res.MeanBatch)
	fmt.Printf("recall@%d %.3f (ef-search %d), p50 %.3f ms, p99 %.3f ms, SLO %.1f%%\n",
		res.TopK, res.Recall, res.EfSearch, res.P50*1e3, res.P99*1e3, 100*res.SLOAttainment)
	fmt.Println("\nthe batcher coalesces duplicate hot queries and answers each")
	fmt.Println("batch with one staged gather plus one search kernel; recall is")
	fmt.Println("scored against the exact oracle over the same embeddings.")
}
