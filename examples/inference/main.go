// Offline inference over the shared-memory store: after training, every
// node of the graph is embedded with full-graph layer-wise propagation —
// each GNN layer applied to every node exactly once, intermediate
// embeddings living in distributed shared memory — and the result is
// compared against embedding the same nodes through the sampled mini-batch
// pipeline (which re-computes overlapping neighborhoods batch after batch).
//
//	go run ./examples/inference
package main

import (
	"fmt"
	"log"

	"wholegraph"
)

func main() {
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.002))
	if err != nil {
		log.Fatal(err)
	}
	machine := wholegraph.NewDGXA100(1)
	trainer, err := wholegraph.NewTrainer(machine, ds, wholegraph.TrainOptions{
		Arch:    "gcn",
		Batch:   64,
		Fanouts: []int{10, 10},
		Hidden:  32,
		LR:      0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training...")
	for e := 0; e < 10; e++ {
		trainer.RunEpoch()
	}

	// Full-graph layer-wise inference: one pass, every node.
	lw := trainer.Models[0].(wholegraph.LayerwiseModel)
	t0 := machine.MaxTime()
	logits, err := wholegraph.FullGraphInference(trainer.Stores[0], lw)
	if err != nil {
		log.Fatal(err)
	}
	fullTime := machine.MaxTime() - t0

	// The same embeddings via the sampled pipeline, batch by batch.
	t1 := machine.MaxTime()
	ids := make([]int64, ds.Graph.N)
	for i := range ids {
		ids[i] = int64(i)
	}
	sampled := trainer.Predict(ids)
	sampledTime := machine.MaxTime() - t1

	// Agreement on predicted classes (sampling uses finite fanout, so
	// high-degree nodes can differ slightly).
	agree := 0
	for v := range sampled {
		if argmax(sampled[v]) == argmaxRow(logits.Row(v)) {
			agree++
		}
	}
	fmt.Printf("embedded %d nodes\n", logits.R)
	fmt.Printf("full-graph: %.2f ms   sampled pipeline: %.2f ms   (%.1fx)\n",
		fullTime*1e3, sampledTime*1e3, sampledTime/fullTime)
	fmt.Printf("prediction agreement between the two paths: %.1f%%\n",
		100*float64(agree)/float64(len(sampled)))
}

func argmax(row []float32) int {
	best := 0
	for j, v := range row {
		if v > row[best] {
			best = j
		}
	}
	return best
}

func argmaxRow(row []float32) int { return argmax(row) }
