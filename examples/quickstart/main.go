// Quickstart: the smallest end-to-end WholeGraph run.
//
// It builds a simulated DGX-A100, generates a scaled ogbn-products-like
// graph, partitions it into multi-GPU distributed shared memory, trains a
// 2-layer GraphSAGE for a few epochs, and prints the virtual epoch times
// with the sampling / gathering / training breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wholegraph"
)

func main() {
	// One simulated DGX-A100 node: 8 A100 GPUs behind NVSwitch.
	machine := wholegraph.NewDGXA100(1)

	// A 1/1000-scale stand-in for ogbn-products (2.4k nodes, ~62k edge
	// pairs, 100-dim features, 47 classes).
	ds, err := wholegraph.GenerateDataset(wholegraph.OgbnProducts.Scaled(0.001))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s — %d nodes, %d stored edges, %d training nodes\n",
		ds.Spec.Name, ds.Graph.N, ds.Graph.NumEdges(), len(ds.Train))

	// The trainer partitions graph structure and features across all 8
	// GPUs (hash partitioning, CUDA-IPC-style setup) and runs one
	// data-parallel worker per GPU.
	trainer, err := wholegraph.NewTrainer(machine, ds, wholegraph.TrainOptions{
		Arch:    "graphsage",
		Batch:   32,
		Fanouts: []int{5, 5},
		Hidden:  32,
		LR:      0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-GPU store setup: %.1f ms (virtual, one-time)\n\n", machine.MaxTime()*1e3)
	machine.Reset()

	for epoch := 1; epoch <= 8; epoch++ {
		st := trainer.RunEpoch()
		fmt.Printf("epoch %d: %.2f ms  (sample %.2f ms, gather %.2f ms, train %.2f ms)  loss %.3f  acc %.2f\n",
			st.Epoch, st.EpochTime*1e3,
			st.Timing.Sample*1e3, st.Timing.Gather*1e3, st.Timing.Train*1e3,
			st.Loss, st.TrainAcc)
	}
	fmt.Printf("\nvalidation accuracy: %.3f\n", trainer.Evaluate(ds.Val, 0))
}
