// Graph classification — the third GNN task the paper names (§I), in the
// "dataset with many graphs" regime its introduction motivates (molecular
// property prediction, etc.). Hundreds of small graphs live concatenated in
// the GPUs' shared memory; each batch gathers a handful of whole graphs
// (contiguous feature rows — large segments on the Figure 8 curve), builds
// their disjoint union as one message-flow block, encodes it with a GIN and
// mean-pools each graph into a class prediction. The classes are topology
// motifs (cycle / star / clique / path), so accuracy measures genuine
// structural learning.
//
//	go run ./examples/graphclass
package main

import (
	"fmt"
	"log"

	"wholegraph"
)

func main() {
	ds, err := wholegraph.GenerateGraphClassDataset(wholegraph.GraphClassSpec{
		NumGraphs:  480,
		MinNodes:   6,
		MaxNodes:   14,
		FeatDim:    8,
		NumClasses: 4,
		TrainFrac:  0.8,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	machine := wholegraph.NewDGXA100(1)
	store, err := wholegraph.NewGraphClassStore(machine, 0, ds)
	if err != nil {
		log.Fatal(err)
	}
	machine.Reset()

	tr, err := wholegraph.NewGraphClassifier(store, machine.Devs[0], wholegraph.GraphClassOptions{
		Batch: 32, Layers: 3, Hidden: 24, LR: 0.01, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("classifying %d small graphs into %d topology motifs\n\n",
		len(ds.Graphs), ds.Spec.NumClasses)
	fmt.Printf("%6s %10s %10s\n", "iter", "loss", "test acc")
	fmt.Printf("%6d %10s %9.1f%%\n", 0, "-", 100*tr.Evaluate(ds.Test))
	for it := 1; it <= 160; it++ {
		loss, _ := tr.TrainStep()
		if it%40 == 0 {
			fmt.Printf("%6d %10.4f %9.1f%%\n", it, loss, 100*tr.Evaluate(ds.Test))
		}
	}
	fmt.Printf("\ntotal virtual time: %.2f ms on one GPU of the shared store\n",
		machine.MaxTime()*1e3)
}
